// tests/test_shard.cpp — hyperedge-range shards: sharded snapshots must
// reassemble bit-exact under the plain readers, the out-of-core
// sharded_snapshot view must reproduce both CSRs row by row, and the
// shard-at-a-time BFS/CC engines must answer exactly like their in-memory
// counterparts — across the differential seed stream, several shard
// counts, and both slice encodings (raw and SVB).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>
#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "nwhy/algorithms/hyper_bfs.hpp"
#include "nwhy/algorithms/hyper_cc.hpp"
#include "nwhy/algorithms/sharded_traversal.hpp"
#include "nwhy/gen/generators.hpp"
#include "nwhy/io/csr_snapshot.hpp"
#include "nwhy/io/io_error.hpp"
#include "nwhy/io/shard.hpp"
#include "nwhy/nwhypergraph.hpp"
#include "prop_harness.hpp"

using namespace nw::hypergraph;
using nw::vertex_id_t;

namespace {

struct scratch_file {
  std::string path;
  explicit scratch_file(const std::string& tag) {
    static int counter = 0;
    path = (std::filesystem::temp_directory_path() /
            ("nwhy_shard_" + tag + "_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter++) + ".nwcsr"))
               .string();
  }
  ~scratch_file() {
    std::error_code ec;
    std::filesystem::remove(path, ec);
  }
};

/// RAII environment override restored (or unset) on scope exit.
struct env_guard {
  std::string name;
  std::string old;
  bool        had;
  env_guard(const char* n, const char* value) : name(n) {
    const char* prev = std::getenv(n);
    had              = prev != nullptr;
    if (had) old = prev;
    ::setenv(n, value, 1);
  }
  ~env_guard() {
    if (had) {
      ::setenv(name.c_str(), old.c_str(), 1);
    } else {
      ::unsetenv(name.c_str());
    }
  }
};

const std::vector<std::uint32_t>& shard_counts() {
  static const std::vector<std::uint32_t> counts{1, 3, 8};
  return counts;
}

/// Row-by-row comparison of the sharded view against the in-memory
/// bi-adjacency: E2N rows shard by shard, N2E rows restricted to each
/// shard's hyperedge range.
void expect_shards_reproduce_csrs(sharded_snapshot& snap, const NWHypergraph& hg) {
  const auto& e2n = hg.hyperedges().csr();
  const auto& n2e = hg.hypernodes().csr();
  ASSERT_EQ(snap.num_hyperedges(), hg.num_hyperedges());
  ASSERT_EQ(snap.num_hypernodes(), hg.num_hypernodes());
  ASSERT_EQ(snap.num_incidences(), hg.num_incidences());
  for (std::size_t k = 0; k < snap.num_shards(); ++k) {
    auto view = snap.load_shard(k);
    for (vertex_id_t e = view.e_begin; e < view.e_end; ++e) {
      auto row  = view.edge_row(e);
      auto want = e2n.targets().subspan(e2n.indices()[e], e2n.indices()[e + 1] - e2n.indices()[e]);
      ASSERT_TRUE(std::equal(row.begin(), row.end(), want.begin(), want.end()))
          << "shard " << k << " edge " << e;
    }
    for (std::size_t v = 0; v < hg.num_hypernodes(); ++v) {
      auto row = view.node_row(static_cast<vertex_id_t>(v));
      std::vector<vertex_id_t> want;
      for (auto off = n2e.indices()[v]; off < n2e.indices()[v + 1]; ++off) {
        vertex_id_t e = n2e.targets()[off];
        if (e >= view.e_begin && e < view.e_end) want.push_back(e);
      }
      ASSERT_TRUE(std::equal(row.begin(), row.end(), want.begin(), want.end()))
          << "shard " << k << " node " << v;
    }
  }
  snap.release_shard();
}

}  // namespace

TEST(Shard, PlainReadersReassembleBitExactAcrossSeedsShardsEncodings) {
  for (auto seed : nwtest::differential_seeds(0x51A0)) {
    NWHY_SEED_TRACE(seed);
    NWHypergraph hg(gen::arbitrary_hypergraph(seed));
    for (auto shards : shard_counts()) {
      for (bool compress : {false, true}) {
        SCOPED_TRACE("shards=" + std::to_string(shards) + " svb=" + std::to_string(compress));
        scratch_file f("reasm");
        csr_shard_options so;
        so.shards   = shards;
        so.compress = compress;
        hg.save_csr_snapshot(f.path, so);
        auto snap = load_csr_snapshot(f.path, /*verify_checksums=*/true);
        auto ai   = hg.hyperedges().csr().indices();
        auto bi   = snap.edges.csr().indices();
        ASSERT_TRUE(std::equal(ai.begin(), ai.end(), bi.begin(), bi.end()));
        auto at = hg.hyperedges().csr().targets();
        auto bt = snap.edges.csr().targets();
        ASSERT_TRUE(std::equal(at.begin(), at.end(), bt.begin(), bt.end()));
        auto ci = hg.hypernodes().csr().indices();
        auto di = snap.nodes.csr().indices();
        ASSERT_TRUE(std::equal(ci.begin(), ci.end(), di.begin(), di.end()));
        auto ct = hg.hypernodes().csr().targets();
        auto dt = snap.nodes.csr().targets();
        ASSERT_TRUE(std::equal(ct.begin(), ct.end(), dt.begin(), dt.end()));
      }
    }
  }
}

TEST(Shard, ShardedViewReproducesBothCsrs) {
  for (auto seed : nwtest::differential_seeds(0x51C0)) {
    NWHY_SEED_TRACE(seed);
    NWHypergraph hg(gen::arbitrary_hypergraph(seed));
    for (auto shards : shard_counts()) {
      for (bool compress : {false, true}) {
        SCOPED_TRACE("shards=" + std::to_string(shards) + " svb=" + std::to_string(compress));
        scratch_file f("view");
        csr_shard_options so;
        so.shards   = shards;
        so.compress = compress;
        hg.save_csr_snapshot(f.path, so);
        sharded_snapshot snap(f.path);
        ASSERT_LE(snap.num_shards(), static_cast<std::size_t>(shards));
        expect_shards_reproduce_csrs(snap, hg);
      }
    }
  }
}

TEST(Shard, ByteBudgetCutsMultipleShards) {
  // Large enough that a 4 KiB raw-slice budget (8 bytes per incidence) must
  // cut several shards: 2000 edges x 4 members = 64000 payload bytes.
  biedgelist<> el;
  for (vertex_id_t e = 0; e < 2000; ++e) {
    for (vertex_id_t j = 0; j < 4; ++j) el.push_back(e, (e * 7 + j * 131) % 512);
  }
  el.sort_and_unique();
  NWHypergraph hg(std::move(el));
  scratch_file f("budget");
  csr_shard_options so;
  so.target_bytes = 4096;  // force several cuts on any non-trivial input
  hg.save_csr_snapshot(f.path, so);
  sharded_snapshot snap(f.path);
  ASSERT_GT(snap.num_shards(), 1u);
  expect_shards_reproduce_csrs(snap, hg);
}

TEST(Shard, BfsMatchesInMemoryEngine) {
  for (auto seed : nwtest::differential_seeds(0x5200)) {
    NWHY_SEED_TRACE(seed);
    NWHypergraph hg(gen::arbitrary_hypergraph(seed));
    const auto   ne = static_cast<vertex_id_t>(hg.num_hyperedges());
    if (ne == 0) continue;
    for (auto shards : shard_counts()) {
      SCOPED_TRACE("shards=" + std::to_string(shards));
      scratch_file f("bfs");
      csr_shard_options so;
      so.shards   = shards;
      so.compress = (seed & 1) != 0;  // alternate encodings across the stream
      hg.save_csr_snapshot(f.path, so);
      sharded_snapshot snap(f.path);
      for (vertex_id_t src : {vertex_id_t{0}, static_cast<vertex_id_t>(ne / 2),
                              static_cast<vertex_id_t>(ne - 1)}) {
        auto mem = hg.bfs(src);
        auto ooc = hyper_bfs_sharded(snap, src);
        ASSERT_EQ(mem.dist_edge, ooc.dist_edge) << "src " << src;
        ASSERT_EQ(mem.dist_node, ooc.dist_node) << "src " << src;
        ASSERT_EQ(ooc.parents_edge[src], src);
      }
    }
  }
}

TEST(Shard, CcMatchesInMemoryEngine) {
  for (auto seed : nwtest::differential_seeds(0x5230)) {
    NWHY_SEED_TRACE(seed);
    NWHypergraph hg(gen::arbitrary_hypergraph(seed));
    auto         mem = hg.connected_components();
    for (auto shards : shard_counts()) {
      SCOPED_TRACE("shards=" + std::to_string(shards));
      scratch_file f("cc");
      csr_shard_options so;
      so.shards   = shards;
      so.compress = (seed & 1) != 0;
      hg.save_csr_snapshot(f.path, so);
      sharded_snapshot snap(f.path);
      auto             ooc = hyper_cc_sharded(snap);
      ASSERT_EQ(mem.labels_edge, ooc.labels_edge);
      ASSERT_EQ(mem.labels_node, ooc.labels_node);
    }
  }
}

TEST(Shard, RelabeledShardedPipelineAnswersMatch) {
  // The full locality pipeline: degree relabel + shards + SVB slices.  The
  // embedded inverse map must translate out-of-core answers back to
  // external ids exactly.
  for (auto seed : nwtest::differential_seeds(0x5260)) {
    NWHY_SEED_TRACE(seed);
    auto         el = gen::arbitrary_hypergraph(seed);
    NWHypergraph plain(el);
    NWHypergraph twin(el);
    const auto   ne = static_cast<vertex_id_t>(plain.num_hyperedges());
    if (ne == 0) continue;
    twin.relabel_by_degree();
    scratch_file f("pipe");
    csr_shard_options so;
    so.shards   = 3;
    so.compress = true;
    twin.save_csr_snapshot(f.path, so);

    sharded_snapshot snap(f.path);
    auto             inv = snap.relabel_inv();
    ASSERT_EQ(inv.size(), plain.num_hyperedges());
    std::vector<vertex_id_t> perm(inv.size());
    for (std::size_t i = 0; i < inv.size(); ++i) perm[inv[i]] = static_cast<vertex_id_t>(i);

    const vertex_id_t src = ne / 2;
    auto              mem = plain.bfs(src);
    auto              ooc = hyper_bfs_sharded(snap, perm[src]);
    for (vertex_id_t e = 0; e < ne; ++e) {
      ASSERT_EQ(mem.dist_edge[e], ooc.dist_edge[perm[e]]) << "edge " << e;
    }
    ASSERT_EQ(mem.dist_node, ooc.dist_node);

    // The facade's loaded twin answers the same queries without manual maps.
    NWHypergraph loaded(load_csr_snapshot(f.path));
    ASSERT_TRUE(loaded.is_relabeled());
    auto lb = loaded.bfs(src);
    ASSERT_EQ(mem.dist_edge, lb.dist_edge);
    ASSERT_EQ(mem.dist_node, lb.dist_node);
  }
}

TEST(Shard, UnshardedSnapshotIsRejectedWithClearMessage) {
  NWHypergraph hg(gen::arbitrary_hypergraph(0x5290));
  scratch_file f("plainfile");
  hg.save_csr_snapshot(f.path);
  EXPECT_THROW(
      {
        try {
          sharded_snapshot snap(f.path);
        } catch (const io_error& e) {
          EXPECT_NE(std::string(e.what()).find("shard directory"), std::string::npos)
              << e.what();
          throw;
        }
      },
      io_error);
}

TEST(Shard, MadviseKnobOffStillAnswersExactly) {
  env_guard guard("NWHY_MADVISE", "0");
  NWHypergraph hg(gen::arbitrary_hypergraph(0x52A0));
  scratch_file f("madv");
  csr_shard_options so;
  so.shards = 3;
  hg.save_csr_snapshot(f.path, so);
  sharded_snapshot snap(f.path);
  auto             mem = hg.connected_components();
  auto             ooc = hyper_cc_sharded(snap);
  ASSERT_EQ(mem.labels_edge, ooc.labels_edge);
  ASSERT_EQ(mem.labels_node, ooc.labels_node);
}

TEST(Shard, LoadShardIsRestartableAndReleaseIdempotent) {
  NWHypergraph hg(gen::arbitrary_hypergraph(0x52B0));
  scratch_file f("restart");
  csr_shard_options so;
  so.shards = 3;
  hg.save_csr_snapshot(f.path, so);
  sharded_snapshot snap(f.path);
  ASSERT_GE(snap.num_shards(), 1u);
  // Loading out of order, twice, with interleaved releases must stay exact.
  auto first = snap.load_shard(snap.num_shards() - 1);
  (void)first;
  snap.release_shard();
  snap.release_shard();
  expect_shards_reproduce_csrs(snap, hg);
  expect_shards_reproduce_csrs(snap, hg);
}
