// tests/test_work_stealing.cpp — the work-stealing scheduler: Chase–Lev
// deque semantics, coverage/exactly-once properties of the stealing
// parallel_for across pool sizes and grains, stress under skewed work, and
// integration with an s-line-graph construction.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "nwhy/biadjacency.hpp"
#include "nwhy/gen/generators.hpp"
#include "nwhy/slinegraph/construction.hpp"
#include "nwpar/work_stealing.hpp"
#include "test_util.hpp"

using namespace nw::par;

// --- deque unit tests -----------------------------------------------------------

TEST(ChaseLevDeque, OwnerPushPopLifo) {
  detail::chase_lev_deque dq;
  dq.push({0, 10});
  dq.push({10, 20});
  index_range r{};
  ASSERT_TRUE(dq.pop(r));
  EXPECT_EQ(r.begin, 10u);
  ASSERT_TRUE(dq.pop(r));
  EXPECT_EQ(r.begin, 0u);
  EXPECT_FALSE(dq.pop(r));
}

TEST(ChaseLevDeque, StealTakesOldest) {
  detail::chase_lev_deque dq;
  dq.push({0, 10});
  dq.push({10, 20});
  index_range r{};
  ASSERT_TRUE(dq.steal(r));
  EXPECT_EQ(r.begin, 0u);  // FIFO from the thief's side
  ASSERT_TRUE(dq.pop(r));
  EXPECT_EQ(r.begin, 10u);
  EXPECT_FALSE(dq.steal(r));
}

TEST(ChaseLevDeque, ConcurrentStealersGetDisjointRanges) {
  detail::chase_lev_deque dq;
  constexpr int           kItems = 512;
  for (int i = 0; i < kItems; ++i) {
    dq.push({static_cast<std::size_t>(i), static_cast<std::size_t>(i + 1)});
  }
  std::vector<std::atomic<int>> taken(kItems);
  std::vector<std::thread>      thieves;
  std::atomic<int>              total{0};
  for (int t = 0; t < 4; ++t) {
    thieves.emplace_back([&] {
      index_range r{};
      while (total.load() < kItems) {
        if (dq.steal(r)) {
          taken[r.begin].fetch_add(1);
          total.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : thieves) th.join();
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(taken[i].load(), 1) << i;
}

TEST(ChaseLevDeque, OwnerAndThievesShareExactlyOnce) {
  // Stays under the deque's fixed capacity (the scheduler's outstanding
  // ranges are bounded by split depth; this stress respects that contract).
  detail::chase_lev_deque dq;
  constexpr int           kItems = 900;
  std::vector<std::atomic<int>> taken(kItems);
  std::atomic<int>              total{0};
  std::thread thief([&] {
    index_range r{};
    while (total.load() < kItems) {
      if (dq.steal(r)) {
        taken[r.begin].fetch_add(1);
        total.fetch_add(1);
      }
    }
  });
  index_range r{};
  for (int i = 0; i < kItems; ++i) {
    dq.push({static_cast<std::size_t>(i), static_cast<std::size_t>(i + 1)});
    if (i % 3 == 0 && dq.pop(r)) {
      taken[r.begin].fetch_add(1);
      total.fetch_add(1);
    }
  }
  while (dq.pop(r)) {
    taken[r.begin].fetch_add(1);
    total.fetch_add(1);
  }
  thief.join();
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(taken[i].load(), 1) << i;
}

// --- stealing parallel_for -------------------------------------------------------

class StealingParam : public ::testing::TestWithParam<std::tuple<unsigned, std::size_t>> {};

TEST_P(StealingParam, EachIndexExactlyOnce) {
  auto [threads, n] = GetParam();
  thread_pool                   pool(threads);
  std::vector<std::atomic<int>> hits(n);
  parallel_for_stealing(0, n, [&](std::size_t i) { hits[i].fetch_add(1); }, stealing{}, pool);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST_P(StealingParam, ExplicitGrainStillExact) {
  auto [threads, n] = GetParam();
  thread_pool                pool(threads);
  std::atomic<std::uint64_t> sum{0};
  parallel_for_stealing(0, n, [&](std::size_t i) { sum.fetch_add(i + 1); }, stealing{3}, pool);
  EXPECT_EQ(sum.load(), static_cast<std::uint64_t>(n) * (n + 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(PoolAndSize, StealingParam,
                         ::testing::Combine(::testing::Values(1u, 2u, 4u, 8u),
                                            ::testing::Values(std::size_t{1}, std::size_t{17},
                                                              std::size_t{1000},
                                                              std::size_t{50000})));

TEST(Stealing, EmptyRangeNoOp) {
  thread_pool pool(4);
  int         count = 0;
  parallel_for_stealing(5, 5, [&](std::size_t) { ++count; }, stealing{}, pool);
  EXPECT_EQ(count, 0);
}

TEST(Stealing, NonZeroBegin) {
  thread_pool      pool(4);
  std::atomic<int> bad{0}, count{0};
  parallel_for_stealing(
      1000, 2000,
      [&](std::size_t i) {
        if (i < 1000 || i >= 2000) ++bad;
        ++count;
      },
      stealing{}, pool);
  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(count.load(), 1000);
}

TEST(Stealing, TidVariantInRange) {
  thread_pool      pool(3);
  std::atomic<int> bad{0};
  parallel_for_stealing(
      0, 10000,
      [&](unsigned tid, std::size_t) {
        if (tid >= 3) ++bad;
      },
      stealing{}, pool);
  EXPECT_EQ(bad.load(), 0);
}

TEST(Stealing, SkewedWorkStressExactlyOnce) {
  // Front-loaded heavy items (degree-sorted shape): thieves must redistribute.
  thread_pool                   pool(8);
  constexpr std::size_t         n = 4096;
  std::vector<std::atomic<int>> hits(n);
  std::atomic<std::uint64_t>    effort{0};
  for (int round = 0; round < 20; ++round) {
    for (auto& h : hits) h.store(0);
    parallel_for_stealing(
        0, n,
        [&](std::size_t i) {
          hits[i].fetch_add(1);
          // Heavy work for small i.
          std::uint64_t acc = 0;
          for (std::size_t k = 0; k < (n - i) / 16; ++k) acc += k;
          effort.fetch_add(acc & 1);
        },
        stealing{1}, pool);
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << "round " << round;
  }
}

TEST(Stealing, GenericParallelForDispatch) {
  thread_pool                   pool(4);
  std::vector<std::atomic<int>> hits(777);
  parallel_for(0, 777, [&](std::size_t i) { hits[i].fetch_add(1); }, stealing{}, pool);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Stealing, SLineGraphConstructionUnderStealing) {
  auto el = nw::hypergraph::gen::powerlaw_hypergraph(60, 40, 15, 1.4, 1.0, 0x5EA1);
  el.sort_and_unique();
  nw::hypergraph::biadjacency<0> he(el);
  nw::hypergraph::biadjacency<1> hn(el);
  auto degrees = he.degrees();
  for (std::size_t s : {1, 2, 3}) {
    auto stolen = nwtest::canonical_pairs(
        nw::hypergraph::to_two_graph_hashmap(he, hn, degrees, s, stealing{}));
    auto blocked_result = nwtest::canonical_pairs(
        nw::hypergraph::to_two_graph_hashmap(he, hn, degrees, s, blocked{}));
    EXPECT_EQ(stolen, blocked_result) << "s=" << s;
  }
}
