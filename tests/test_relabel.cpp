// tests/test_relabel.cpp — degree-ordered relabeling: the parallel
// permutation builder against its serial oracle, and facade invisibility —
// every query on a relabeled NWHypergraph must answer exactly as the
// unrelabeled twin, across the differential seed stream and the
// {1, 2, 4, hw} thread sweep (nothing may depend on scheduling).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <numeric>
#include <string>
#include <vector>
#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "nwhy/gen/generators.hpp"
#include "nwhy/nwhypergraph.hpp"
#include "nwhy/relabel.hpp"
#include "prop_harness.hpp"

using namespace nw::hypergraph;
using nw::vertex_id_t;

namespace {

struct scratch_file {
  std::string path;
  explicit scratch_file(const std::string& tag) {
    static int counter = 0;
    path = (std::filesystem::temp_directory_path() /
            ("nwhy_relabel_" + tag + "_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter++) + ".nwcsr"))
               .string();
  }
  ~scratch_file() {
    std::error_code ec;
    std::filesystem::remove(path, ec);
  }
};

/// Assert that every structural and algorithmic query answers identically
/// on `plain` and `twin` — the invisibility contract of relabeling.
void expect_query_equivalence(const NWHypergraph& plain, const NWHypergraph& twin) {
  ASSERT_EQ(plain.num_hyperedges(), twin.num_hyperedges());
  ASSERT_EQ(plain.num_hypernodes(), twin.num_hypernodes());
  ASSERT_EQ(plain.num_incidences(), twin.num_incidences());
  ASSERT_EQ(plain.edge_sizes(), twin.edge_sizes());
  ASSERT_EQ(plain.node_degrees(), twin.node_degrees());

  const auto ne = static_cast<vertex_id_t>(plain.num_hyperedges());
  const auto nn = static_cast<vertex_id_t>(plain.num_hypernodes());
  for (vertex_id_t e = 0; e < ne; ++e) {
    ASSERT_EQ(plain.edge_members(e), twin.edge_members(e)) << "edge " << e;
  }
  for (vertex_id_t v = 0; v < nn; ++v) {
    ASSERT_EQ(plain.incident_edges(v), twin.incident_edges(v)) << "node " << v;
  }

  // HyperCC labels are canonical (per-component min hyperedge id) and
  // toplexes emit ascending ids: both must be bit-identical.
  auto cc_a = plain.connected_components();
  auto cc_b = twin.connected_components();
  ASSERT_EQ(cc_a.labels_edge, cc_b.labels_edge);
  ASSERT_EQ(cc_a.labels_node, cc_b.labels_node);
  ASSERT_EQ(plain.toplexes(), twin.toplexes());

  // BFS distances are level-synchronous, hence label-invariant; parents are
  // schedule-dependent, so check the structural contract instead.
  for (vertex_id_t src : {vertex_id_t{0}, static_cast<vertex_id_t>(ne / 2)}) {
    if (src >= ne) continue;
    auto a = plain.bfs(src);
    auto b = twin.bfs(src);
    ASSERT_EQ(a.dist_edge, b.dist_edge) << "src " << src;
    ASSERT_EQ(a.dist_node, b.dist_node) << "src " << src;
    if (ne != 0) {
      ASSERT_EQ(b.parents_edge[src], src);
    }
    for (vertex_id_t v = 0; v < nn; ++v) {
      if (b.dist_node[v] == nw::null_vertex<>) {
        ASSERT_EQ(b.parents_node[v], nw::null_vertex<>);
        continue;
      }
      vertex_id_t pe = b.parents_node[v];
      ASSERT_LT(pe, ne) << "node parent out of range";
      ASSERT_EQ(b.dist_edge[pe] + 1, b.dist_node[v]) << "parent not one level up";
      auto members = twin.edge_members(pe);
      ASSERT_TRUE(std::find(members.begin(), members.end(), v) != members.end())
          << "parent edge does not contain the node";
    }
  }

  // s-line graph family: edge sets as canonical pair sets, implicit
  // component labels and distances bit-identical.
  for (std::size_t s : {std::size_t{1}, std::size_t{2}}) {
    auto lg_a = plain.make_s_linegraph(s);
    auto lg_b = twin.make_s_linegraph(s);
    ASSERT_EQ(lg_a.num_vertices(), lg_b.num_vertices()) << "s=" << s;
    ASSERT_EQ(nwtest::csr_pairs(lg_a.graph()), nwtest::csr_pairs(lg_b.graph())) << "s=" << s;
    ASSERT_EQ(plain.s_connected_components_implicit(s),
              twin.s_connected_components_implicit(s))
        << "s=" << s;
    if (ne >= 2) {
      ASSERT_EQ(plain.s_distance_implicit(s, 0, ne - 1),
                twin.s_distance_implicit(s, 0, ne - 1))
          << "s=" << s;
    }
  }
}

}  // namespace

TEST(Relabel, PermutationMatchesSerialOracleAcrossSeedsAndThreads) {
  nwtest::concurrency_guard guard;
  for (auto seed : nwtest::differential_seeds(0x8E1A)) {
    NWHY_SEED_TRACE(seed);
    NWHypergraph hg(gen::arbitrary_hypergraph(seed));
    const auto&  degrees = hg.edge_sizes();
    for (auto order : {nw::graph::degree_order::descending, nw::graph::degree_order::ascending}) {
      auto oracle_perm = nw::graph::degree_permutation(degrees, order);
      auto oracle_inv  = nw::graph::inverse_permutation(oracle_perm);
      for (unsigned threads : nwtest::differential_thread_counts()) {
        nw::par::thread_pool::set_default_concurrency(threads);
        auto maps = degree_relabel_maps(degrees, order);
        ASSERT_EQ(maps.perm, oracle_perm) << "threads=" << threads;
        ASSERT_EQ(maps.inv, oracle_inv) << "threads=" << threads;
      }
    }
  }
}

TEST(Relabel, DegenerateDegreeRangeFallsBackToComparisonSort) {
  // One pathological degree makes the counting-sort bucket table dwarf the
  // id space; the fallback must stay bit-identical to the oracle.
  std::vector<std::size_t> degrees{3, 1'000'000'000, 3, 7, 0, 7};
  auto maps   = degree_relabel_maps(degrees);
  auto oracle = nw::graph::degree_permutation(degrees, nw::graph::degree_order::descending);
  ASSERT_EQ(maps.perm, oracle);
  ASSERT_EQ(maps.inv, nw::graph::inverse_permutation(oracle));
}

TEST(Relabel, TranslateAndReindexRoundTrip) {
  std::vector<std::size_t> degrees{2, 5, 1, 5, 0, 3};
  auto                     maps = degree_relabel_maps(degrees);
  std::vector<vertex_id_t> ids(degrees.size());
  std::iota(ids.begin(), ids.end(), 0);
  translate_ids(ids, maps.perm);
  translate_ids(ids, maps.inv);
  for (std::size_t i = 0; i < ids.size(); ++i) ASSERT_EQ(ids[i], static_cast<vertex_id_t>(i));
  auto re = reindex_by_permutation(degrees, maps.perm);
  for (std::size_t i = 0; i < degrees.size(); ++i) ASSERT_EQ(re[maps.perm[i]], degrees[i]);
  // Descending by construction.
  for (std::size_t i = 1; i < re.size(); ++i) ASSERT_GE(re[i - 1], re[i]);
}

TEST(Relabel, FacadeInvisibilityAcrossSeedsAndThreads) {
  nwtest::concurrency_guard guard;
  for (auto seed : nwtest::differential_seeds(0x8E40)) {
    NWHY_SEED_TRACE(seed);
    auto el = gen::arbitrary_hypergraph(seed);
    for (unsigned threads : nwtest::differential_thread_counts()) {
      nw::par::thread_pool::set_default_concurrency(threads);
      NWHypergraph plain(el);
      NWHypergraph twin(el);
      twin.relabel_by_degree();
      ASSERT_TRUE(twin.is_relabeled());
      ASSERT_FALSE(plain.is_relabeled());
      expect_query_equivalence(plain, twin);
    }
  }
}

TEST(Relabel, SnapshotRoundTripKeepsRelabelAndAnswers) {
  for (auto seed : nwtest::differential_seeds(0x8E80)) {
    NWHY_SEED_TRACE(seed);
    auto         el = gen::arbitrary_hypergraph(seed);
    NWHypergraph plain(el);
    NWHypergraph twin(el);
    twin.relabel_by_degree();
    scratch_file f("roundtrip");
    twin.save_csr_snapshot(f.path);
    NWHypergraph loaded(load_csr_snapshot(f.path));
    ASSERT_TRUE(loaded.is_relabeled()) << "kind-13 inverse map not adopted";
    expect_query_equivalence(plain, loaded);
  }
}

TEST(Relabel, DerelabelRestoresOriginalStorage) {
  auto         el = gen::arbitrary_hypergraph(0x8EB0);
  NWHypergraph plain(el);
  NWHypergraph twin(el);
  twin.relabel_by_degree();
  twin.derelabel();
  ASSERT_FALSE(twin.is_relabeled());
  expect_query_equivalence(plain, twin);
  // The underlying CSRs must be bit-identical again, not just query-equal.
  auto pi = plain.hyperedges().csr().indices();
  auto ti = twin.hyperedges().csr().indices();
  ASSERT_TRUE(std::equal(pi.begin(), pi.end(), ti.begin(), ti.end()));
  auto pt = plain.hyperedges().csr().targets();
  auto tt = twin.hyperedges().csr().targets();
  ASSERT_TRUE(std::equal(pt.begin(), pt.end(), tt.begin(), tt.end()));
}

TEST(Relabel, RepeatedRelabelComposesAndStaysInvisible) {
  auto         el = gen::arbitrary_hypergraph(0x8EC0);
  NWHypergraph plain(el);
  NWHypergraph twin(el);
  twin.relabel_by_degree();
  twin.relabel_by_degree(nw::graph::degree_order::ascending);
  ASSERT_TRUE(twin.is_relabeled());
  expect_query_equivalence(plain, twin);
}

TEST(Relabel, MutationAutoDerelabels) {
  auto         el = gen::arbitrary_hypergraph(0x8ED0);
  NWHypergraph plain(el);
  NWHypergraph twin(el);
  twin.relabel_by_degree();
  std::vector<vertex_id_t> members{0, 1, 2};
  plain.update_edge(0, members);
  twin.update_edge(0, members);
  ASSERT_FALSE(twin.is_relabeled()) << "mutation must drop the relabel layer";
  ASSERT_EQ(plain.edge_members(0), twin.edge_members(0));
  plain.compact();
  twin.compact();
  expect_query_equivalence(plain, twin);
}

TEST(Relabel, RequiresCompactedState) {
  NWHypergraph hg(gen::arbitrary_hypergraph(0x8EE0));
  hg.update_edge(0, {0, 1});
  EXPECT_THROW(hg.relabel_by_degree(), std::logic_error);
  hg.compact();
  EXPECT_NO_THROW(hg.relabel_by_degree());
}
