// tests/test_nwgraph_io.cpp — plain-graph I/O for the NWGraph substrate.
#include <gtest/gtest.h>

#include <sstream>

#include "nwgraph/adjacency.hpp"
#include "nwgraph/io.hpp"
#include "test_util.hpp"

using namespace nw::graph;
using nw::vertex_id_t;

TEST(GraphIo, SquareMmRoundTrip) {
  auto               el = nwtest::random_graph(30, 100, 8);
  std::ostringstream out;
  write_mm_graph(out, el);
  std::istringstream in(out.str());
  auto               back = read_mm_graph(in);
  back.set_num_vertices(30);
  back.sort_and_unique();
  ASSERT_EQ(back.size(), el.size());
  for (std::size_t i = 0; i < el.size(); ++i) {
    EXPECT_EQ(back.source(i), el.source(i));
    EXPECT_EQ(back.destination(i), el.destination(i));
  }
}

TEST(GraphIo, SymmetricMmEmitsBothDirections) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern symmetric\n"
      "3 3 2\n"
      "2 1\n"
      "3 3\n");
  auto el = read_mm_graph(in);
  // (1,0) -> both directions; (2,2) self loop stays single.
  EXPECT_EQ(el.size(), 3u);
}

TEST(GraphIo, RejectsRectangular) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "3 4 1\n"
      "1 1\n");
  EXPECT_DEATH(read_mm_graph(in), "square");
}

TEST(GraphIo, EdgeListReader) {
  std::istringstream in(
      "# comment\n"
      "0 1\n"
      "1 2\n"
      "\n"
      "% another comment\n"
      "2 0\n");
  auto el = read_edge_list(in);
  ASSERT_EQ(el.size(), 3u);
  EXPECT_EQ(el.source(2), 2u);
  EXPECT_EQ(el.destination(2), 0u);
  EXPECT_EQ(el.num_vertices(), 3u);
}

TEST(GraphIo, ReadGraphRunsAlgorithms) {
  auto               el = nwtest::random_graph(40, 120, 9);
  std::ostringstream out;
  write_mm_graph(out, el);
  std::istringstream in(out.str());
  auto               back = read_mm_graph(in);
  back.set_num_vertices(40);
  adjacency<> g(back);
  auto        before = nwtest::reference_components(adjacency<>(el));
  auto        after  = nwtest::reference_components(g);
  EXPECT_TRUE(nwtest::same_partition(before, after));
}
