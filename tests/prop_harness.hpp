// tests/prop_harness.hpp — shared machinery of the differential test driver.
//
// The differential harness (tests/test_differential.cpp) runs every
// parallel algorithm family against the serial oracles in nwhy/ref/ over a
// stream of generated hypergraphs.  This header centralizes the pieces
// every family test needs:
//
//   * seed stream control — `NWHY_TEST_SEED=<n>` pins the run to one seed
//     (the replay knob printed by failing assertions); `NWHY_TEST_ITERS=<k>`
//     scales the seed budget (default 24; check.sh --differential and the
//     TSan gate use smaller budgets to bound wall time);
//   * `NWHY_SEED_TRACE(seed)` — a SCOPED_TRACE that embeds the seed and the
//     one-command replay line into every assertion failure below it;
//   * thread-count sweep — {1, 2, 4, hardware}, deduplicated, plus an RAII
//     guard restoring the pool to hardware concurrency however the test
//     exits;
//   * canonicalization — symmetric CSR / edge_list -> sorted {lo, hi} pair
//     sets and plain adjacency lists, the common comparison currency
//     between the parallel outputs and the oracle.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "nwgraph/concepts.hpp"  // nw::graph::target for the CSR canonicalizers
#include "nwhy/ref/ref.hpp"
#include "nwpar/thread_pool.hpp"
#include "nwutil/defs.hpp"

namespace nwtest {

using nw::vertex_id_t;

/// Parse an unsigned environment knob; `fallback` when unset or malformed.
inline std::uint64_t env_u64(const char* name, std::uint64_t fallback, bool* present = nullptr) {
  const char* raw = std::getenv(name);
  if (present) *present = raw != nullptr;
  if (!raw || !*raw) return fallback;
  char*              end = nullptr;
  unsigned long long v   = std::strtoull(raw, &end, 0);
  if (end == raw) return fallback;
  return static_cast<std::uint64_t>(v);
}

/// The seed stream of a differential run.  `NWHY_TEST_SEED` pins the stream
/// to a single seed for replay; otherwise `NWHY_TEST_ITERS` (default 24)
/// consecutive seeds starting at `base`.  Each test family passes its own
/// `base` so a family's seed i never aliases another family's seed i.
inline std::vector<std::uint64_t> differential_seeds(std::uint64_t base) {
  bool pinned   = false;
  auto pin_seed = env_u64("NWHY_TEST_SEED", 0, &pinned);
  if (pinned) return {pin_seed};
  auto iters = env_u64("NWHY_TEST_ITERS", 24);
  std::vector<std::uint64_t> seeds;
  seeds.reserve(iters);
  for (std::uint64_t i = 0; i < iters; ++i) seeds.push_back(base + i);
  return seeds;
}

/// Thread counts every parallel family is swept over: 1 (serial execution
/// of the parallel code path), 2, 4, and the hardware concurrency —
/// deduplicated and ascending, so machines with <= 4 cores don't run a
/// configuration twice.
inline std::vector<unsigned> differential_thread_counts() {
  std::vector<unsigned> counts{1, 2, 4, std::max(1u, std::thread::hardware_concurrency())};
  std::sort(counts.begin(), counts.end());
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
  return counts;
}

/// The replay line embedded in every differential assertion failure.
inline std::string replay_hint(std::uint64_t seed) {
  return "seed=" + std::to_string(seed) +
         "  replay: NWHY_TEST_SEED=" + std::to_string(seed) + " ./tests/test_differential";
}

/// RAII: restore the default pool to hardware concurrency no matter how the
/// enclosing test exits (assertion failure included).
struct concurrency_guard {
  concurrency_guard() = default;
  ~concurrency_guard() {
    nw::par::thread_pool::set_default_concurrency(
        std::max(1u, std::thread::hardware_concurrency()));
  }
};

/// Canonical sorted unique {lo, hi} pair set of a *symmetric* CSR (each
/// undirected edge stored in both directions; self-loops never occur in
/// line graphs).
template <class Adjacency>
std::vector<std::pair<vertex_id_t, vertex_id_t>> csr_pairs(const Adjacency& g) {
  std::vector<std::pair<vertex_id_t, vertex_id_t>> pairs;
  for (std::size_t u = 0; u < g.size(); ++u) {
    for (auto&& e : g[u]) {
      vertex_id_t v = nw::graph::target(e);
      if (u < v) pairs.push_back({static_cast<vertex_id_t>(u), v});
    }
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  return pairs;
}

/// A CSR graph as the plain adjacency list the ref:: oracles consume.
template <class Adjacency>
nw::hypergraph::ref::adjacency_list csr_to_adjacency(const Adjacency& g) {
  nw::hypergraph::ref::adjacency_list adj(g.size());
  for (std::size_t u = 0; u < g.size(); ++u) {
    for (auto&& e : g[u]) adj[u].push_back(nw::graph::target(e));
    std::sort(adj[u].begin(), adj[u].end());
  }
  return adj;
}

/// Count the distinct non-null labels of a component-label array.
inline std::size_t distinct_labels(const std::vector<vertex_id_t>& labels) {
  std::vector<vertex_id_t> seen;
  for (auto l : labels) {
    if (l != nw::null_vertex<>) seen.push_back(l);
  }
  std::sort(seen.begin(), seen.end());
  seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
  return seen.size();
}

}  // namespace nwtest

/// Embed the seed + replay command in every assertion below this statement.
#define NWHY_SEED_TRACE(seed) SCOPED_TRACE(::nwtest::replay_hint(seed))
