// tests/test_sparse.cpp — the rectangular sparse-matrix substrate and the
// algebraic (SpGEMM) construction route: B·Bᵗ thresholding must agree with
// every combinatorial s-line algorithm, Bᵗ·B with the clique expansion.
#include <gtest/gtest.h>

#include "nwgraph/sparse/csr_matrix.hpp"
#include "nwhy/nwhypergraph.hpp"
#include "nwhy/slinegraph/spgemm.hpp"
#include "test_util.hpp"

using namespace nw::sparse;
using namespace nw::hypergraph;
using nw::vertex_id_t;
using nwtest::canonical_pairs;

using mat = csr_matrix<std::uint32_t>;

TEST(CsrMatrix, TripletConstructionSortsAndSums) {
  mat m(3, 4,
        {{0, 2, 5}, {0, 1, 1}, {2, 0, 3}, {0, 2, 2}});  // duplicate (0,2) sums to 7
  EXPECT_EQ(m.num_rows(), 3u);
  EXPECT_EQ(m.num_cols(), 4u);
  EXPECT_EQ(m.num_nonzeros(), 3u);
  EXPECT_EQ(m.at(0, 1), 1u);
  EXPECT_EQ(m.at(0, 2), 7u);
  EXPECT_EQ(m.at(2, 0), 3u);
  EXPECT_EQ(m.at(1, 1), 0u);
  auto cols = m.row_columns(0);
  EXPECT_TRUE(std::is_sorted(cols.begin(), cols.end()));
}

TEST(CsrMatrix, EmptyMatrix) {
  mat m(0, 0, {});
  EXPECT_EQ(m.num_nonzeros(), 0u);
  mat m2(5, 7, {});
  EXPECT_EQ(m2.num_nonzeros(), 0u);
  EXPECT_EQ(m2.at(4, 6), 0u);
}

TEST(CsrMatrix, OutOfBoundsTripletAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH(mat(2, 2, {{2, 0, 1}}), "bounds");
}

TEST(CsrMatrix, TransposeIsInvolution) {
  auto el = nwtest::figure1_hypergraph();
  el.sort_and_unique();
  auto b   = mat::from_incidence(el);
  auto bt  = b.transpose();
  auto btt = bt.transpose();
  EXPECT_EQ(bt.num_rows(), b.num_cols());
  EXPECT_EQ(bt.num_cols(), b.num_rows());
  EXPECT_EQ(btt.num_nonzeros(), b.num_nonzeros());
  for (std::size_t r = 0; r < b.num_rows(); ++r) {
    for (auto c : b.row_columns(r)) {
      EXPECT_EQ(bt.at(c, r), b.at(r, c));
      EXPECT_EQ(btt.at(r, c), b.at(r, c));
    }
  }
}

TEST(CsrMatrix, IncidenceMatrixMatchesHypergraph) {
  auto el = nwtest::figure1_hypergraph();
  el.sort_and_unique();
  auto b = mat::from_incidence(el);
  EXPECT_EQ(b.num_rows(), 4u);
  EXPECT_EQ(b.num_cols(), 9u);
  EXPECT_EQ(b.num_nonzeros(), 13u);
  EXPECT_EQ(b.at(0, 1), 1u);  // v1 in e0
  EXPECT_EQ(b.at(0, 5), 0u);  // v5 not in e0
}

TEST(CsrMatrix, SpmvDegreeIdentities) {
  // B · 1 = hyperedge sizes, Bᵗ · 1 = hypernode degrees.
  auto el = nwtest::figure1_hypergraph();
  el.sort_and_unique();
  NWHypergraph hg(el);
  auto         b  = mat::from_incidence(el);
  auto         bt = b.transpose();
  std::vector<std::uint64_t> ones_v(b.num_cols(), 1), ones_e(b.num_rows(), 1);
  auto sizes   = b.spmv(std::span<const std::uint64_t>(ones_v));
  auto degrees = bt.spmv(std::span<const std::uint64_t>(ones_e));
  for (std::size_t e = 0; e < hg.num_hyperedges(); ++e) {
    EXPECT_EQ(sizes[e], hg.edge_sizes()[e]);
  }
  for (std::size_t v = 0; v < hg.num_hypernodes(); ++v) {
    EXPECT_EQ(degrees[v], hg.node_degrees()[v]);
  }
}

TEST(CsrMatrix, SpmvRejectsDimensionMismatch) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  mat                        m(2, 3, {{0, 0, 1}});
  std::vector<std::uint64_t> wrong(2, 1);
  EXPECT_DEATH(m.spmv(std::span<const std::uint64_t>(wrong)), "dimension");
}

TEST(CsrMatrix, MultiplySmallKnown) {
  // [1 2]   [5 6]   [ 5+14  6+16 ]   [19 22]
  // [3 4] x [7 8] = [ 15+28 18+32] = [43 50]
  mat a(2, 2, {{0, 0, 1}, {0, 1, 2}, {1, 0, 3}, {1, 1, 4}});
  mat b(2, 2, {{0, 0, 5}, {0, 1, 6}, {1, 0, 7}, {1, 1, 8}});
  auto c = a.multiply(b);
  EXPECT_EQ(c.at(0, 0), 19u);
  EXPECT_EQ(c.at(0, 1), 22u);
  EXPECT_EQ(c.at(1, 0), 43u);
  EXPECT_EQ(c.at(1, 1), 50u);
}

TEST(CsrMatrix, MultiplyRejectsDimensionMismatch) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  mat a(2, 3, {{0, 0, 1}});
  mat b(2, 2, {{0, 0, 1}});
  EXPECT_DEATH(a.multiply(b), "dimension");
}

TEST(CsrMatrix, BBtDiagonalIsEdgeSizes) {
  auto el = nwtest::figure1_hypergraph();
  el.sort_and_unique();
  NWHypergraph hg(el);
  auto         b   = mat::from_incidence(el);
  auto         bbt = b.multiply(b.transpose());
  for (std::size_t e = 0; e < hg.num_hyperedges(); ++e) {
    EXPECT_EQ(bbt.at(e, e), hg.edge_sizes()[e]);
  }
  // Off-diagonals are overlaps: |e0 ∩ e1| = 2.
  EXPECT_EQ(bbt.at(0, 1), 2u);
  EXPECT_EQ(bbt.at(1, 0), 2u);
  EXPECT_EQ(bbt.at(0, 3), 0u);
}

// --- the algebraic construction route ---------------------------------------------

class SpgemmParam : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t>> {};

TEST_P(SpgemmParam, SpgemmLineGraphMatchesHashmap) {
  auto [seed, s] = GetParam();
  auto el        = gen::powerlaw_hypergraph(60, 45, 15, 1.4, 1.0, seed);
  el.sort_and_unique();
  NWHypergraph hg(el);
  auto algebraic     = canonical_pairs(to_two_graph_spgemm(hg.edge_list(), s));
  auto combinatorial = canonical_pairs(
      to_two_graph_hashmap(hg.hyperedges(), hg.hypernodes(), hg.edge_sizes(), s));
  EXPECT_EQ(algebraic, combinatorial);
}

INSTANTIATE_TEST_SUITE_P(SeedsAndS, SpgemmParam,
                         ::testing::Combine(::testing::Values(1, 2),
                                            ::testing::Values(std::size_t{1}, std::size_t{2},
                                                              std::size_t{4})));

TEST(Spgemm, CliqueExpansionMatchesCombinatorial) {
  auto el = nwtest::figure1_hypergraph();
  el.sort_and_unique();
  NWHypergraph hg(el);
  auto algebraic = canonical_pairs(clique_expansion_spgemm(hg.edge_list()));
  auto node_deg  = hg.node_degrees();
  auto combi = canonical_pairs(clique_expansion(hg.hypernodes(), hg.hyperedges(), node_deg));
  EXPECT_EQ(algebraic, combi);
  EXPECT_EQ(algebraic.size(), 14u);
}

// --- GraphBLAS-style exact algorithms over the adjoin matrix -------------------------

TEST(GraphBlas, AdjoinMatrixHasBlockStructure) {
  auto el = nwtest::figure1_hypergraph();
  el.sort_and_unique();
  auto b = mat::from_incidence(el);
  auto a = nw::sparse::adjoin_matrix(b);
  EXPECT_EQ(a.num_rows(), 13u);
  EXPECT_EQ(a.num_nonzeros(), 26u);
  // Diagonal blocks are zero: no edge-edge or node-node entries.
  for (std::size_t e = 0; e < 4; ++e) {
    for (auto c : a.row_columns(e)) EXPECT_GE(c, 4u);
  }
  for (std::size_t v = 4; v < 13; ++v) {
    for (auto c : a.row_columns(v)) EXPECT_LT(c, 4u);
  }
  // Symmetry.
  for (std::size_t r = 0; r < a.num_rows(); ++r) {
    for (auto c : a.row_columns(r)) EXPECT_EQ(a.at(c, r), a.at(r, c));
  }
}

class GraphBlasParam : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GraphBlasParam, SpmvBfsMatchesAdjacencyBfs) {
  auto el = gen::uniform_random_hypergraph(60, 80, 3, GetParam());
  el.sort_and_unique();
  auto b      = mat::from_incidence(el);
  auto a      = nw::sparse::adjoin_matrix(b);
  auto adjoin = make_adjoin_graph(el);
  auto matrix_levels = nw::sparse::bfs_levels_spmv(a, 0);
  auto list_levels   = nwtest::reference_bfs_distances(adjoin.graph, 0);
  EXPECT_EQ(matrix_levels, list_levels);
}

TEST_P(GraphBlasParam, SpmvCcMatchesAdjacencyCc) {
  auto el = gen::planted_community_hypergraph(40, 100, 15, 1.4, 0.2, GetParam());
  el.sort_and_unique();
  auto b      = mat::from_incidence(el);
  auto a      = nw::sparse::adjoin_matrix(b);
  auto adjoin = make_adjoin_graph(el);
  EXPECT_TRUE(nwtest::same_partition(nw::sparse::cc_spmv(a),
                                     nwtest::reference_components(adjoin.graph)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphBlasParam, ::testing::Values(1, 2, 3));

TEST(GraphBlas, BfsRejectsRectangular) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  mat b(2, 3, {{0, 0, 1}});
  EXPECT_DEATH(nw::sparse::bfs_levels_spmv(b, 0), "square");
}

TEST(Spgemm, Figure1SLineGraphs) {
  auto el = nwtest::figure1_hypergraph();
  el.sort_and_unique();
  using pairs_t = std::vector<std::pair<vertex_id_t, vertex_id_t>>;
  EXPECT_EQ(canonical_pairs(to_two_graph_spgemm(el, 1)),
            (pairs_t{{0, 1}, {1, 2}, {2, 3}}));
  EXPECT_EQ(canonical_pairs(to_two_graph_spgemm(el, 2)), (pairs_t{{0, 1}}));
  EXPECT_TRUE(to_two_graph_spgemm(el, 3).empty());
}
