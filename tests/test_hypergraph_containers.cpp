// tests/test_hypergraph_containers.cpp — biedgelist, biadjacency (the two
// mutually indexed CSRs), and the adjoin representation.
#include <gtest/gtest.h>

#include <ranges>
#include <set>

#include "nwhy/adjoin.hpp"
#include "nwhy/biadjacency.hpp"
#include "nwhy/biedgelist.hpp"
#include "test_util.hpp"

using namespace nw::hypergraph;
using nw::vertex_id_t;

TEST(Biedgelist, CardinalitiesTrackIds) {
  biedgelist<> el;
  el.push_back(3, 7);
  EXPECT_EQ(el.num_vertices(0), 4u);
  EXPECT_EQ(el.num_vertices(1), 8u);
  el.push_back(0, 20);
  EXPECT_EQ(el.num_vertices(0), 4u);
  EXPECT_EQ(el.num_vertices(1), 21u);
}

TEST(Biedgelist, DeclaredCardinalitiesAreFloors) {
  biedgelist<> el(10, 10);
  el.push_back(0, 1);
  EXPECT_EQ(el.num_vertices(0), 10u);
  EXPECT_EQ(el.num_vertices(1), 10u);
}

TEST(Biedgelist, SortAndUniqueCanonicalizes) {
  biedgelist<> el;
  el.push_back(1, 5);
  el.push_back(0, 3);
  el.push_back(1, 5);
  el.push_back(1, 2);
  el.sort_and_unique();
  EXPECT_EQ(el.size(), 3u);
  auto [e0, v0] = el[0];
  EXPECT_EQ(e0, 0u);
  EXPECT_EQ(v0, 3u);
  auto [e1, v1] = el[1];
  EXPECT_EQ(e1, 1u);
  EXPECT_EQ(v1, 2u);
}

TEST(Biadjacency, MutualIndexingIsConsistent) {
  auto el = nwtest::figure1_hypergraph();
  el.sort_and_unique();
  biadjacency<0> hyperedges(el);
  biadjacency<1> hypernodes(el);

  EXPECT_EQ(hyperedges.size(), 4u);
  EXPECT_EQ(hypernodes.size(), 9u);
  EXPECT_EQ(hyperedges.num_edges(), el.size());
  EXPECT_EQ(hypernodes.num_edges(), el.size());

  // Every incidence visible from one side must be visible from the other.
  for (std::size_t e = 0; e < hyperedges.size(); ++e) {
    for (auto&& ev : hyperedges[e]) {
      vertex_id_t v    = target(ev);
      auto        back = hypernodes[v];
      bool        found = false;
      for (auto&& ve : back) {
        if (target(ve) == e) found = true;
      }
      EXPECT_TRUE(found) << "incidence (" << e << ", " << v << ") missing from node side";
    }
  }
}

TEST(Biadjacency, DegreesAreEdgeSizesAndNodeMemberships) {
  auto el = nwtest::figure1_hypergraph();
  el.sort_and_unique();
  biadjacency<0> hyperedges(el);
  biadjacency<1> hypernodes(el);
  EXPECT_EQ(hyperedges.degree(0), 3u);
  EXPECT_EQ(hyperedges.degree(1), 4u);
  EXPECT_EQ(hypernodes.degree(1), 2u);  // v1 in e0 and e1
  EXPECT_EQ(hypernodes.degree(7), 1u);
  std::size_t total = 0;
  for (auto d : hyperedges.degrees()) total += d;
  EXPECT_EQ(total, el.size());
}

TEST(Biadjacency, RectangularIndexSpaces) {
  biedgelist<> el(2, 100);
  el.push_back(0, 99);
  el.push_back(1, 50);
  el.sort_and_unique();
  biadjacency<0> hyperedges(el);
  biadjacency<1> hypernodes(el);
  EXPECT_EQ(hyperedges.size(), 2u);
  EXPECT_EQ(hypernodes.size(), 100u);
  EXPECT_EQ(hyperedges.num_targets(), 100u);
  EXPECT_EQ(hypernodes.num_targets(), 2u);
}

TEST(Biadjacency, Listing3FreeFunctionFacade) {
  auto el = nwtest::figure1_hypergraph();
  el.sort_and_unique();
  biadjacency<0> hyperedges(el);
  EXPECT_EQ(num_vertices(hyperedges, 0), 4u);
  EXPECT_EQ(num_vertices(hyperedges, 1), 9u);
}

TEST(Biadjacency, RangeOfRangesIteration) {
  auto el = nwtest::figure1_hypergraph();
  el.sort_and_unique();
  biadjacency<0> hyperedges(el);
  // Listing 3 style: outer + inner range loops.
  std::size_t incidences = 0;
  for (auto&& e_neighbors : hyperedges) {
    for (auto&& e : e_neighbors) {
      (void)target(e);
      ++incidences;
    }
  }
  EXPECT_EQ(incidences, el.size());
  static_assert(std::ranges::random_access_range<biadjacency<0>>);
  static_assert(std::ranges::forward_range<std::ranges::range_reference_t<biadjacency<0>>>);
}

TEST(Biadjacency, EmptyHypergraph) {
  biedgelist<>   el;
  biadjacency<0> hyperedges(el);
  EXPECT_EQ(hyperedges.size(), 0u);
  EXPECT_EQ(hyperedges.num_edges(), 0u);
}

TEST(Biadjacency, IsolatedEntitiesHaveZeroDegree) {
  biedgelist<> el(5, 5);
  el.push_back(0, 0);
  el.sort_and_unique();
  biadjacency<0> hyperedges(el);
  biadjacency<1> hypernodes(el);
  EXPECT_EQ(hyperedges.degree(4), 0u);
  EXPECT_EQ(hypernodes.degree(4), 0u);
}

// --- adjoin ----------------------------------------------------------------

TEST(Adjoin, StructureMatchesDefinition) {
  auto el = nwtest::figure1_hypergraph();
  el.sort_and_unique();
  auto g = make_adjoin_graph(el);
  EXPECT_EQ(g.nrealedges, 4u);
  EXPECT_EQ(g.nrealnodes, 9u);
  EXPECT_EQ(g.num_ids(), 13u);
  EXPECT_EQ(g.graph.size(), 13u);
  // Twice the incidences (both directions).
  EXPECT_EQ(g.graph.num_edges(), 2 * el.size());
}

TEST(Adjoin, BipartiteBlockStructure) {
  // A_G = [[0, Bt], [B, 0]]: hyperedge ids only neighbor hypernode ids and
  // vice versa — no edge-edge or node-node adjacency.
  auto el = nwtest::figure1_hypergraph();
  el.sort_and_unique();
  auto g = make_adjoin_graph(el);
  for (std::size_t u = 0; u < g.num_ids(); ++u) {
    bool u_is_edge = g.is_edge_id(static_cast<vertex_id_t>(u));
    for (auto&& e : g.graph[u]) {
      bool v_is_edge = g.is_edge_id(nw::graph::target(e));
      EXPECT_NE(u_is_edge, v_is_edge) << "same-class adjacency at " << u;
    }
  }
}

TEST(Adjoin, SymmetricAdjacency) {
  auto el = nwtest::figure1_hypergraph();
  el.sort_and_unique();
  auto g = make_adjoin_graph(el);
  for (std::size_t u = 0; u < g.num_ids(); ++u) {
    for (auto&& e : g.graph[u]) {
      vertex_id_t v     = nw::graph::target(e);
      auto        back  = g.graph[v];
      bool        found = std::find(back.begin(), back.end(), u) != back.end();
      EXPECT_TRUE(found);
    }
  }
}

TEST(Adjoin, DegreesMatchBipartiteSides) {
  auto el = nwtest::figure1_hypergraph();
  el.sort_and_unique();
  biadjacency<0> hyperedges(el);
  biadjacency<1> hypernodes(el);
  auto           g = make_adjoin_graph(el);
  for (std::size_t e = 0; e < hyperedges.size(); ++e) {
    EXPECT_EQ(g.graph.degree(e), hyperedges.degree(e));
  }
  for (std::size_t v = 0; v < hypernodes.size(); ++v) {
    EXPECT_EQ(g.graph.degree(g.node_to_adjoin(static_cast<vertex_id_t>(v))),
              hypernodes.degree(v));
  }
}

TEST(Adjoin, IdMappingRoundTrips) {
  auto el = nwtest::figure1_hypergraph();
  el.sort_and_unique();
  auto g = make_adjoin_graph(el);
  for (vertex_id_t v = 0; v < g.nrealnodes; ++v) {
    auto shared = g.node_to_adjoin(v);
    EXPECT_FALSE(g.is_edge_id(shared));
    EXPECT_EQ(g.adjoin_to_node(shared), v);
  }
  for (vertex_id_t e = 0; e < g.nrealedges; ++e) EXPECT_TRUE(g.is_edge_id(e));
}

TEST(Adjoin, SplitResultsPartitionsArray) {
  std::vector<int> combined{10, 11, 12, 20, 21};
  auto [edges, nodes] = split_results(combined, 3);
  EXPECT_EQ(edges, (std::vector<int>{10, 11, 12}));
  EXPECT_EQ(nodes, (std::vector<int>{20, 21}));
}

TEST(Adjoin, EdgeListReaderOutputsCardinalities) {
  auto el = nwtest::figure1_hypergraph();
  el.sort_and_unique();
  std::size_t ne = 0, nv = 0;
  auto        flat = make_adjoin_edge_list(el, ne, nv);
  EXPECT_EQ(ne, 4u);
  EXPECT_EQ(nv, 9u);
  EXPECT_EQ(flat.size(), 2 * el.size());
  EXPECT_EQ(flat.num_vertices(), 13u);
}
