// tests/test_slinegraph_construction.cpp — property tests for the six
// s-line-graph construction algorithms: all variants must produce the same
// edge set, on every representation (bipartite / adjoin), under every
// partitioning strategy, with and without relabel-by-degree.
#include <gtest/gtest.h>

#include <map>

#include "nwgraph/relabel.hpp"
#include "nwhy/adjoin.hpp"
#include "nwhy/biadjacency.hpp"
#include "nwhy/gen/generators.hpp"
#include "nwhy/slinegraph/construction.hpp"
#include "test_util.hpp"

using namespace nw::hypergraph;
using nw::vertex_id_t;
using nwtest::canonical_pairs;

namespace {

struct fixture {
  biedgelist<>             el;
  biadjacency<0>           hyperedges;
  biadjacency<1>           hypernodes;
  std::vector<std::size_t> degrees;

  explicit fixture(biedgelist<> input) {
    input.sort_and_unique();
    el         = std::move(input);
    hyperedges = biadjacency<0>(el);
    hypernodes = biadjacency<1>(el);
    degrees    = hyperedges.degrees();
  }

  std::vector<vertex_id_t> all_ids() const {
    std::vector<vertex_id_t> q(hyperedges.size());
    for (std::size_t i = 0; i < q.size(); ++i) q[i] = static_cast<vertex_id_t>(i);
    return q;
  }
};

using pairs_t = std::vector<std::pair<vertex_id_t, vertex_id_t>>;

/// Ground truth by brute force over unordered hyperedge pairs.
pairs_t brute_force_slinegraph(const fixture& f, std::size_t s) {
  pairs_t result;
  for (std::size_t i = 0; i < f.hyperedges.size(); ++i) {
    for (std::size_t j = i + 1; j < f.hyperedges.size(); ++j) {
      if (intersection_size(f.hyperedges[i], f.hyperedges[j]) >= s) {
        result.push_back({static_cast<vertex_id_t>(i), static_cast<vertex_id_t>(j)});
      }
    }
  }
  return result;
}

}  // namespace

// --- Fig. 1 / Fig. 5 worked example ---------------------------------------------

TEST(SLineGraph, Figure5ExactEdgeSets) {
  fixture f(nwtest::figure1_hypergraph());
  // s = 1: e0-e1 (v1, v2), e1-e2 (v4), e2-e3 (v6).
  auto l1 = canonical_pairs(to_two_graph_hashmap(f.hyperedges, f.hypernodes, f.degrees, 1));
  EXPECT_EQ(l1, (pairs_t{{0, 1}, {1, 2}, {2, 3}}));
  // s = 2: only e0-e1.
  auto l2 = canonical_pairs(to_two_graph_hashmap(f.hyperedges, f.hypernodes, f.degrees, 2));
  EXPECT_EQ(l2, (pairs_t{{0, 1}}));
  // s = 3: empty.
  auto l3 = canonical_pairs(to_two_graph_hashmap(f.hyperedges, f.hypernodes, f.degrees, 3));
  EXPECT_TRUE(l3.empty());
}

TEST(SLineGraph, CliqueExpansionOfFigure1) {
  fixture f(nwtest::figure1_hypergraph());
  auto    node_degrees = f.hypernodes.degrees();
  auto    ce = canonical_pairs(clique_expansion(f.hypernodes, f.hyperedges, node_degrees));
  // e0 contributes C(3,2)=3, e1 C(4,2)=6, e2 3, e3 3; pair {1,2} shared once.
  EXPECT_EQ(ce.size(), 14u);
  EXPECT_TRUE(std::find(ce.begin(), ce.end(), std::pair<vertex_id_t, vertex_id_t>{1, 2}) !=
              ce.end());
}

// --- all-variant agreement, parameterized over (dataset, s) ----------------------

struct VariantCase {
  const char* name;
  biedgelist<> (*build)();
  std::size_t s;
};

biedgelist<> build_fig1() { return nwtest::figure1_hypergraph(); }
biedgelist<> build_uniform() { return gen::uniform_random_hypergraph(80, 60, 5, 0xBEEF); }
biedgelist<> build_powerlaw() {
  return gen::powerlaw_hypergraph(70, 50, 20, 1.5, 1.0, 0xBEEF);
}
biedgelist<> build_community() {
  return gen::planted_community_hypergraph(50, 120, 25, 1.4, 0.4, 0xBEEF);
}
biedgelist<> build_nested() { return gen::nested_hypergraph(6, 6); }

class SLineVariants : public ::testing::TestWithParam<VariantCase> {};

TEST_P(SLineVariants, AllSixAlgorithmsAgreeWithBruteForce) {
  auto [name, build, s] = GetParam();
  fixture f(build());
  auto    expected = brute_force_slinegraph(f, s);

  auto naive = canonical_pairs(to_two_graph_naive(f.hyperedges, f.hypernodes, f.degrees, s));
  EXPECT_EQ(naive, expected) << "naive";

  auto isect =
      canonical_pairs(to_two_graph_intersection(f.hyperedges, f.hypernodes, f.degrees, s));
  EXPECT_EQ(isect, expected) << "intersection";

  auto hmap = canonical_pairs(to_two_graph_hashmap(f.hyperedges, f.hypernodes, f.degrees, s));
  EXPECT_EQ(hmap, expected) << "hashmap";

  auto queue = f.all_ids();
  auto q1    = canonical_pairs(to_two_graph_queue_hashmap(
      queue, f.hyperedges, f.hypernodes, f.degrees, s, f.hyperedges.size()));
  EXPECT_EQ(q1, expected) << "Algorithm 1 (queue hashmap)";

  auto q2 = canonical_pairs(to_two_graph_queue_intersection(
      queue, f.hyperedges, f.hypernodes, f.degrees, s, f.hyperedges.size()));
  EXPECT_EQ(q2, expected) << "Algorithm 2 (queue two-phase)";

  auto ensemble = to_two_graph_ensemble(f.hyperedges, f.hypernodes, f.degrees, {s});
  EXPECT_EQ(canonical_pairs(ensemble[0]), expected) << "ensemble";

  auto nbr_range =
      canonical_pairs(to_two_graph_neighbor_range(f.hyperedges, f.hypernodes, f.degrees, s, 7));
  EXPECT_EQ(nbr_range, expected) << "cyclic_neighbor_range driver";
}

TEST_P(SLineVariants, CyclicPartitioningGivesSameResult) {
  auto [name, build, s] = GetParam();
  fixture f(build());
  auto    blocked = canonical_pairs(
      to_two_graph_hashmap(f.hyperedges, f.hypernodes, f.degrees, s, nw::par::blocked{}));
  auto cyc = canonical_pairs(
      to_two_graph_hashmap(f.hyperedges, f.hypernodes, f.degrees, s, nw::par::cyclic{13}));
  EXPECT_EQ(blocked, cyc);
}

INSTANTIATE_TEST_SUITE_P(
    DatasetsAndS, SLineVariants,
    ::testing::Values(VariantCase{"fig1_s1", &build_fig1, 1},
                      VariantCase{"fig1_s2", &build_fig1, 2},
                      VariantCase{"uniform_s1", &build_uniform, 1},
                      VariantCase{"uniform_s2", &build_uniform, 2},
                      VariantCase{"uniform_s3", &build_uniform, 3},
                      VariantCase{"powerlaw_s1", &build_powerlaw, 1},
                      VariantCase{"powerlaw_s2", &build_powerlaw, 2},
                      VariantCase{"powerlaw_s4", &build_powerlaw, 4},
                      VariantCase{"community_s1", &build_community, 1},
                      VariantCase{"community_s2", &build_community, 2},
                      VariantCase{"community_s4", &build_community, 4},
                      VariantCase{"nested_s1", &build_nested, 1},
                      VariantCase{"nested_s3", &build_nested, 3}),
    [](const ::testing::TestParamInfo<VariantCase>& info) { return info.param.name; });

// --- ensemble over multiple s values ----------------------------------------------

TEST(SLineGraphEnsemble, MatchesPerSResults) {
  fixture                  f(build_powerlaw());
  std::vector<std::size_t> svals{1, 2, 3, 5, 8};
  auto ensemble = to_two_graph_ensemble(f.hyperedges, f.hypernodes, f.degrees, svals);
  ASSERT_EQ(ensemble.size(), svals.size());
  for (std::size_t k = 0; k < svals.size(); ++k) {
    auto single =
        to_two_graph_hashmap(f.hyperedges, f.hypernodes, f.degrees, svals[k]);
    EXPECT_EQ(canonical_pairs(ensemble[k]), canonical_pairs(single)) << "s=" << svals[k];
  }
}

TEST(SLineGraphEnsemble, MonotoneInS) {
  fixture f(build_uniform());
  auto    ensemble = to_two_graph_ensemble(f.hyperedges, f.hypernodes, f.degrees, {1, 2, 4});
  EXPECT_GE(ensemble[0].size(), ensemble[1].size());
  EXPECT_GE(ensemble[1].size(), ensemble[2].size());
}

// --- queue algorithms on the adjoin representation ---------------------------------
//
// The whole point of Algorithms 1 and 2: they run unchanged when hyperedges
// and hypernodes share one index set (where the non-queue algorithms'
// contiguous-[0, nE) assumption breaks).

class AdjoinQueueParam : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AdjoinQueueParam, QueueAlgorithmsWorkOnAdjoinGraph) {
  std::size_t s = GetParam();
  auto        raw = build_community();
  fixture     f(std::move(raw));
  auto        adjoin = make_adjoin_graph(f.el);

  // Work queue = the hyperedge ids inside the shared index set ([0, nE)).
  std::vector<vertex_id_t> queue(adjoin.nrealedges);
  for (std::size_t i = 0; i < queue.size(); ++i) queue[i] = static_cast<vertex_id_t>(i);
  // Degrees indexed by shared id; hyperedge part is what the kernel reads.
  std::vector<std::size_t> adjoin_degrees = adjoin.graph.degrees();

  auto expected = brute_force_slinegraph(f, s);

  auto q1 = canonical_pairs(to_two_graph_queue_hashmap(queue, adjoin.graph, adjoin.graph,
                                                       adjoin_degrees, s, adjoin.nrealedges));
  EXPECT_EQ(q1, expected);

  auto q2 = canonical_pairs(to_two_graph_queue_intersection(
      queue, adjoin.graph, adjoin.graph, adjoin_degrees, s, adjoin.nrealedges));
  EXPECT_EQ(q2, expected);
}

INSTANTIATE_TEST_SUITE_P(SValues, AdjoinQueueParam, ::testing::Values(1, 2, 3, 5));

// --- queue algorithms on relabeled (permuted) ids -----------------------------------

TEST(SLineGraphRelabel, QueueAlgorithmsHandleDegreePermutedIds) {
  fixture f(build_powerlaw());
  auto    perm = nw::graph::degree_permutation(f.degrees, nw::graph::degree_order::descending);

  // Relabel the hyperedge side only (hypernode ids unchanged).
  biedgelist<> rel_el(f.el.num_vertices(0), f.el.num_vertices(1));
  for (std::size_t i = 0; i < f.el.size(); ++i) {
    auto [e, v] = f.el[i];
    rel_el.push_back(perm[e], v);
  }
  fixture rf(std::move(rel_el));

  std::vector<vertex_id_t> queue(rf.hyperedges.size());
  for (std::size_t i = 0; i < queue.size(); ++i) queue[i] = static_cast<vertex_id_t>(i);

  for (std::size_t s : {1, 2, 3}) {
    auto relabeled = canonical_pairs(to_two_graph_queue_hashmap(
        queue, rf.hyperedges, rf.hypernodes, rf.degrees, s, rf.hyperedges.size()));
    // Map back to original ids and compare with the unpermuted result.
    auto inv = nw::graph::inverse_permutation(perm);
    pairs_t mapped;
    for (auto [a, b] : relabeled) {
      vertex_id_t x = inv[a], y = inv[b];
      if (x > y) std::swap(x, y);
      mapped.push_back({x, y});
    }
    std::sort(mapped.begin(), mapped.end());
    EXPECT_EQ(mapped, brute_force_slinegraph(f, s)) << "s=" << s;
  }
}

// --- degenerate inputs ----------------------------------------------------------------

TEST(SLineGraph, EmptyHypergraph) {
  biedgelist<> el;
  fixture      f(std::move(el));
  auto         result = to_two_graph_hashmap(f.hyperedges, f.hypernodes, f.degrees, 1);
  EXPECT_TRUE(result.empty());
}

TEST(SLineGraph, SingleHyperedgeHasNoLineEdges) {
  biedgelist<> el;
  for (vertex_id_t v = 0; v < 5; ++v) el.push_back(0, v);
  fixture f(std::move(el));
  EXPECT_TRUE(to_two_graph_hashmap(f.hyperedges, f.hypernodes, f.degrees, 1).empty());
}

TEST(SLineGraph, DuplicateHyperedgesAreSAdjacent) {
  biedgelist<> el;
  for (vertex_id_t v = 0; v < 4; ++v) {
    el.push_back(0, v);
    el.push_back(1, v);
  }
  fixture f(std::move(el));
  auto    l4 = canonical_pairs(to_two_graph_hashmap(f.hyperedges, f.hypernodes, f.degrees, 4));
  EXPECT_EQ(l4, (pairs_t{{0, 1}}));
  auto l5 = canonical_pairs(to_two_graph_hashmap(f.hyperedges, f.hypernodes, f.degrees, 5));
  EXPECT_TRUE(l5.empty());
}

TEST(SLineGraph, LargeSFiltersEverythingByDegree) {
  fixture f(build_uniform());
  auto    result = to_two_graph_hashmap(f.hyperedges, f.hypernodes, f.degrees, 1000);
  EXPECT_TRUE(result.empty());
}

TEST(SLineGraph, IntersectionSizeEarlyExitCapsCount) {
  std::vector<vertex_id_t> a{1, 2, 3, 4, 5};
  std::vector<vertex_id_t> b{1, 2, 3, 4, 5};
  EXPECT_EQ(intersection_size(a, b), 5u);
  EXPECT_EQ(intersection_size(a, b, 2), 2u);
  std::vector<vertex_id_t> c{6, 7};
  EXPECT_EQ(intersection_size(a, c), 0u);
  std::vector<vertex_id_t> empty;
  EXPECT_EQ(intersection_size(a, empty), 0u);
}

TEST(SLineGraph, Listing2CyclicSpellingMatches) {
  fixture f(build_uniform());
  auto    a = canonical_pairs(
      to_two_graph_hashmap_cyclic(f.hyperedges, f.hypernodes, f.degrees, 2, 4, 32));
  auto b = canonical_pairs(to_two_graph_hashmap(f.hyperedges, f.hypernodes, f.degrees, 2));
  EXPECT_EQ(a, b);
}
