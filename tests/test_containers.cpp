// tests/test_containers.cpp — edge_list, adjacency (CSR), and relabeling.
#include <gtest/gtest.h>

#include <ranges>
#include <set>
#include <type_traits>

#include "nwgraph/adjacency.hpp"
#include "nwgraph/edge_list.hpp"
#include "nwgraph/relabel.hpp"
#include "test_util.hpp"

using namespace nw::graph;
using nw::vertex_id_t;

TEST(EdgeList, PushAndAccess) {
  edge_list<> el;
  el.push_back(0, 1);
  el.push_back(2, 3);
  EXPECT_EQ(el.size(), 2u);
  EXPECT_EQ(el.source(1), 2u);
  EXPECT_EQ(el.destination(1), 3u);
  auto [u, v] = el[0];
  EXPECT_EQ(u, 0u);
  EXPECT_EQ(v, 1u);
}

TEST(EdgeList, NumVerticesDiscoveredFromData) {
  edge_list<> el;
  el.push_back(3, 9);
  EXPECT_EQ(el.num_vertices(), 10u);
}

TEST(EdgeList, DeclaredVerticesWin) {
  edge_list<> el(100);
  el.push_back(3, 9);
  EXPECT_EQ(el.num_vertices(), 100u);
}

TEST(EdgeList, EmptyListHasZeroVertices) {
  edge_list<> el;
  EXPECT_EQ(el.num_vertices(), 0u);
  EXPECT_TRUE(el.empty());
}

TEST(EdgeList, SortAndUniqueRemovesDuplicates) {
  edge_list<> el(5);
  el.push_back(1, 2);
  el.push_back(0, 3);
  el.push_back(1, 2);
  el.push_back(1, 0);
  el.sort_and_unique();
  EXPECT_EQ(el.size(), 3u);
  EXPECT_EQ(el.source(0), 0u);
  EXPECT_EQ(el.destination(0), 3u);
  EXPECT_EQ(el.source(1), 1u);
  EXPECT_EQ(el.destination(1), 0u);
  EXPECT_EQ(el.source(2), 1u);
  EXPECT_EQ(el.destination(2), 2u);
}

TEST(EdgeList, SymmetrizeDoubles) {
  edge_list<> el(4);
  el.push_back(0, 1);
  el.push_back(2, 3);
  el.symmetrize();
  EXPECT_EQ(el.size(), 4u);
  EXPECT_EQ(el.source(2), 1u);
  EXPECT_EQ(el.destination(2), 0u);
}

TEST(EdgeList, AttributesFollowEdges) {
  edge_list<float> el(4);
  el.push_back(0, 1, 2.5f);
  el.push_back(1, 2, 1.5f);
  el.symmetrize();
  EXPECT_EQ(el.size(), 4u);
  EXPECT_FLOAT_EQ(el.attribute<0>(2), 2.5f);
  auto [u, v, w] = el[3];
  EXPECT_EQ(u, 2u);
  EXPECT_EQ(v, 1u);
  EXPECT_FLOAT_EQ(w, 1.5f);
}

TEST(EdgeList, SortAndUniquePreservesAttributes) {
  edge_list<float> el(3);
  el.push_back(1, 0, 3.0f);
  el.push_back(0, 1, 1.0f);
  el.sort_and_unique();
  EXPECT_FLOAT_EQ(el.attribute<0>(0), 1.0f);
  EXPECT_FLOAT_EQ(el.attribute<0>(1), 3.0f);
}

// --- adjacency ---------------------------------------------------------------

TEST(Adjacency, CsrStructureFromEdgeList) {
  edge_list<> el(4);
  el.push_back(0, 1);
  el.push_back(0, 2);
  el.push_back(1, 2);
  el.push_back(3, 0);
  adjacency<> g(el);
  EXPECT_EQ(g.size(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_EQ(g.degree(2), 0u);
  EXPECT_EQ(g.degree(3), 1u);
  auto n0 = g[0];
  EXPECT_EQ(std::vector<vertex_id_t>(n0.begin(), n0.end()),
            (std::vector<vertex_id_t>{1, 2}));
}

TEST(Adjacency, EmptyGraph) {
  adjacency<> g;
  EXPECT_EQ(g.size(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.begin(), g.end());
}

TEST(Adjacency, OuterIterationMatchesIndexing) {
  auto        el = nwtest::random_graph(50, 200, 1);
  adjacency<> g(el);
  std::size_t u = 0;
  for (auto&& nbrs : g) {
    auto direct = g[u];
    EXPECT_TRUE(std::equal(nbrs.begin(), nbrs.end(), direct.begin(), direct.end()));
    ++u;
  }
  EXPECT_EQ(u, g.size());
}

TEST(Adjacency, OuterIteratorRandomAccessOps) {
  auto        el = nwtest::random_graph(20, 60, 2);
  adjacency<> g(el);
  auto        it = g.begin();
  EXPECT_EQ(g.end() - g.begin(), static_cast<std::ptrdiff_t>(g.size()));
  auto third = it + 3;
  EXPECT_EQ(third - it, 3);
  EXPECT_TRUE(it < third);
  auto nbrs = *(third);
  auto ref  = g[3];
  EXPECT_TRUE(std::equal(nbrs.begin(), nbrs.end(), ref.begin(), ref.end()));
  auto sub = it[5];
  auto ref5 = g[5];
  EXPECT_TRUE(std::equal(sub.begin(), sub.end(), ref5.begin(), ref5.end()));
}

TEST(Adjacency, DegreesVectorMatchesPerVertex) {
  auto        el = nwtest::random_graph(30, 100, 3);
  adjacency<> g(el);
  auto        d = g.degrees();
  ASSERT_EQ(d.size(), g.size());
  for (std::size_t v = 0; v < g.size(); ++v) EXPECT_EQ(d[v], g.degree(v));
}

TEST(Adjacency, RectangularBuildAllowsForeignTargets) {
  edge_list<> el(3);
  el.push_back(0, 100);
  el.push_back(2, 50);
  adjacency<> g(el, 3, 101);  // 3 sources, targets live in [0, 101)
  EXPECT_EQ(g.size(), 3u);
  EXPECT_EQ(target(*g[0].begin()), 100u);
}

TEST(Adjacency, AttributedInnerRangeYieldsTuples) {
  edge_list<float> el(3);
  el.push_back(0, 1, 0.5f);
  el.push_back(0, 2, 1.5f);
  el.push_back(1, 0, 2.5f);
  adjacency<float> g(el);
  std::size_t      count = 0;
  for (auto&& [v, w] : g[0]) {
    if (v == 1) { EXPECT_FLOAT_EQ(w, 0.5f); }
    if (v == 2) { EXPECT_FLOAT_EQ(w, 1.5f); }
    ++count;
  }
  EXPECT_EQ(count, 2u);
  EXPECT_EQ(target(*g[1].begin()), 0u);
}

TEST(Adjacency, ModelsRangeOfRangesConcepts) {
  static_assert(std::ranges::random_access_range<adjacency<>>);
  static_assert(std::ranges::forward_range<std::ranges::range_reference_t<adjacency<>>>);
  static_assert(adjacency_list_graph<adjacency<>>);
  static_assert(degree_enumerable_graph<adjacency<>>);
  SUCCEED();
}

TEST(Adjacency, SortedInputYieldsSortedNeighborhoods) {
  auto        el = nwtest::random_graph(40, 300, 4);  // sort_and_unique'd
  adjacency<> g(el);
  for (std::size_t u = 0; u < g.size(); ++u) {
    auto nbrs = g[u];
    EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  }
}

// --- relabel-by-degree ----------------------------------------------------------

TEST(Relabel, PermutationIsBijective) {
  std::vector<std::size_t> degrees{5, 1, 3, 3, 0};
  for (auto order : {degree_order::ascending, degree_order::descending}) {
    auto             perm = degree_permutation(degrees, order);
    std::set<vertex_id_t> ids(perm.begin(), perm.end());
    EXPECT_EQ(ids.size(), perm.size());
    EXPECT_EQ(*ids.begin(), 0u);
    EXPECT_EQ(*ids.rbegin(), perm.size() - 1);
  }
}

TEST(Relabel, DescendingPutsHighestDegreeFirst) {
  std::vector<std::size_t> degrees{5, 1, 3, 3, 0};
  auto                     perm = degree_permutation(degrees, degree_order::descending);
  EXPECT_EQ(perm[0], 0u);  // degree 5 -> new id 0
  EXPECT_EQ(perm[4], 4u);  // degree 0 -> new id 4
  // Stable tie-break: old 2 before old 3.
  EXPECT_LT(perm[2], perm[3]);
}

TEST(Relabel, AscendingReversesExtremes) {
  std::vector<std::size_t> degrees{5, 1, 3, 3, 0};
  auto                     perm = degree_permutation(degrees, degree_order::ascending);
  EXPECT_EQ(perm[4], 0u);
  EXPECT_EQ(perm[0], 4u);
}

TEST(Relabel, InverseRoundTrips) {
  std::vector<std::size_t> degrees{2, 7, 1, 9, 4, 4};
  auto                     perm = degree_permutation(degrees, degree_order::descending);
  auto                     inv  = inverse_permutation(perm);
  for (std::size_t v = 0; v < perm.size(); ++v) EXPECT_EQ(inv[perm[v]], v);
}

TEST(Relabel, RelabeledGraphPreservesDegreeMultiset) {
  auto        el = nwtest::random_graph(60, 400, 5);
  adjacency<> g(el);
  auto        degrees = g.degrees();
  auto        perm    = degree_permutation(degrees, degree_order::descending);
  auto        rel     = relabel_edge_list(el, perm, perm);
  adjacency<> rg(rel, g.size());
  auto        rd = rg.degrees();
  // New id 0 has the max degree, ids weakly decreasing.
  EXPECT_TRUE(std::is_sorted(rd.begin(), rd.end(), std::greater<>{}));
  auto sorted_old = degrees;
  std::sort(sorted_old.begin(), sorted_old.end());
  auto sorted_new = rd;
  std::sort(sorted_new.begin(), sorted_new.end());
  EXPECT_EQ(sorted_old, sorted_new);
}

// --- move semantics ---------------------------------------------------------
//
// Moves are declared noexcept, so the moved-from reset must never allocate
// (an allocation could throw and std::terminate the program).  The reset
// parks the indices span on a static zero sentinel: the moved-from object
// is the canonical empty CSR (indices() == {0}) and stays fully usable.

static_assert(std::is_nothrow_move_constructible_v<adjacency<>>);
static_assert(std::is_nothrow_move_assignable_v<adjacency<>>);

TEST(Adjacency, MovedFromIsCanonicalEmptyCsr) {
  edge_list<> el(3);
  el.push_back(0, 1);
  el.push_back(1, 2);
  adjacency<> g(el);
  adjacency<> sink(std::move(g));
  // Destination got the structure...
  EXPECT_EQ(sink.size(), 3u);
  EXPECT_EQ(sink.num_edges(), 2u);
  // ...and the source is the canonical empty CSR, with the n+1 == 1
  // indices contract intact and every accessor safe.
  EXPECT_EQ(g.size(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  ASSERT_EQ(g.indices().size(), 1u);
  EXPECT_EQ(g.indices()[0], 0u);
  EXPECT_TRUE(g.targets().empty());
  EXPECT_EQ(g.begin(), g.end());
  // Moving a moved-from object is fine (spans alias static storage).
  adjacency<> again(std::move(g));
  EXPECT_EQ(again.size(), 0u);
  ASSERT_EQ(again.indices().size(), 1u);
  EXPECT_EQ(again.indices()[0], 0u);
  // Copying a moved-from object materializes an owned empty CSR.
  adjacency<> copy(g);
  ASSERT_EQ(copy.indices().size(), 1u);
  EXPECT_EQ(copy.indices()[0], 0u);
  // The moved-from object is reusable through assignment.
  g = sink;
  EXPECT_EQ(g.size(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  auto n0 = g[0];
  EXPECT_EQ(std::vector<vertex_id_t>(n0.begin(), n0.end()), (std::vector<vertex_id_t>{1}));
}

TEST(Adjacency, MoveAssignIntoPopulatedReleasesAndResets) {
  edge_list<> a(2);
  a.push_back(0, 1);
  edge_list<> b(4);
  b.push_back(2, 3);
  b.push_back(3, 2);
  adjacency<> ga(a);
  adjacency<> gb(b);
  ga = std::move(gb);
  EXPECT_EQ(ga.size(), 4u);
  EXPECT_EQ(ga.num_edges(), 2u);
  EXPECT_EQ(gb.size(), 0u);
  ASSERT_EQ(gb.indices().size(), 1u);
  EXPECT_EQ(gb.indices()[0], 0u);
}
