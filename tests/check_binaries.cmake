# tests/check_binaries.cmake — ctest registration guard (run via `cmake -P`).
#
# gtest_discover_tests degrades quietly when a test executable fails to
# compile: the suite's cases are replaced by a single <target>_NOT_BUILT
# placeholder, and a casual reading of the ctest tail ("N% tests passed")
# can miss that hundreds of assertions silently vanished.  This script is
# registered as the `test_binaries_present` ctest entry: it receives the
# expected path of every test executable and fails loudly, naming each
# missing binary, if any of them was not produced by the build.
#
# Usage (see tests/CMakeLists.txt):
#   cmake "-DBINARIES=<path1>;<path2>;..." -P check_binaries.cmake

if(NOT DEFINED BINARIES)
  message(FATAL_ERROR "check_binaries.cmake: pass -DBINARIES=<semicolon-separated paths>")
endif()

set(missing "")
set(present 0)
foreach(bin IN LISTS BINARIES)
  if(EXISTS "${bin}")
    math(EXPR present "${present} + 1")
  else()
    list(APPEND missing "${bin}")
  endif()
endforeach()

if(missing)
  list(LENGTH missing n)
  string(REPLACE ";" "\n  " pretty "${missing}")
  message(FATAL_ERROR
      "${n} test binar(y/ies) missing — the build failed for them and their "
      "test cases were never registered (look for *_NOT_BUILT in the ctest "
      "output):\n  ${pretty}")
endif()

message(STATUS "all ${present} test binaries present")
