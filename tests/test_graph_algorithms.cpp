// tests/test_graph_algorithms.cpp — the NWGraph substrate's algorithms:
// BFS variants, CC variants, SSSP, centralities, PageRank, k-core,
// triangles.  Strategy: exact expectations on small hand-built graphs plus
// agreement-with-reference properties on seeded random graphs.
#include <gtest/gtest.h>

#include <cmath>

#include "nwgraph/algorithms/betweenness.hpp"
#include "nwgraph/algorithms/bfs.hpp"
#include "nwgraph/algorithms/closeness.hpp"
#include "nwgraph/algorithms/connected_components.hpp"
#include "nwgraph/algorithms/kcore.hpp"
#include "nwgraph/algorithms/pagerank.hpp"
#include "nwgraph/algorithms/sssp.hpp"
#include "nwgraph/algorithms/triangle_count.hpp"
#include "test_util.hpp"

using namespace nw::graph;
using nw::vertex_id_t;
using nwtest::random_graph;
using nwtest::reference_bfs_distances;
using nwtest::reference_components;
using nwtest::same_partition;

namespace {

adjacency<> path_graph(std::size_t n) {
  edge_list<> el(n);
  for (vertex_id_t v = 0; v + 1 < n; ++v) {
    el.push_back(v, v + 1);
    el.push_back(v + 1, v);
  }
  el.sort_and_unique();
  return adjacency<>(el);
}

adjacency<> star_graph(std::size_t leaves) {
  edge_list<> el(leaves + 1);
  for (vertex_id_t v = 1; v <= leaves; ++v) {
    el.push_back(0, v);
    el.push_back(v, 0);
  }
  el.sort_and_unique();
  return adjacency<>(el);
}

/// Check a parent array is a valid BFS forest with exactly the reachable set.
template <class Graph>
void check_parents_valid(const Graph& g, vertex_id_t source,
                         const std::vector<vertex_id_t>& parents) {
  auto dist = reference_bfs_distances(g, source);
  ASSERT_EQ(parents.size(), g.size());
  EXPECT_EQ(parents[source], source);
  for (std::size_t v = 0; v < g.size(); ++v) {
    if (dist[v] == nw::null_vertex<>) {
      EXPECT_EQ(parents[v], nw::null_vertex<>) << "unreachable " << v;
    } else {
      ASSERT_NE(parents[v], nw::null_vertex<>) << "reachable " << v;
      if (v != source) {
        // Parent must be exactly one BFS level above the child.
        EXPECT_EQ(dist[parents[v]] + 1, dist[v]) << "vertex " << v;
      }
    }
  }
}

}  // namespace

// --- BFS -----------------------------------------------------------------

class BfsParam : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BfsParam, TopDownParentsValid) {
  auto        el = random_graph(200, 500, GetParam());
  adjacency<> g(el);
  check_parents_valid(g, 0, bfs_top_down(g, 0));
}

TEST_P(BfsParam, BottomUpParentsValid) {
  auto        el = random_graph(200, 500, GetParam());
  adjacency<> g(el);
  check_parents_valid(g, 0, bfs_bottom_up(g, 0));
}

TEST_P(BfsParam, DirectionOptimizingParentsValid) {
  auto        el = random_graph(200, 500, GetParam());
  adjacency<> g(el);
  check_parents_valid(g, 0, bfs_direction_optimizing(g, 0));
}

TEST_P(BfsParam, DistancesMatchReference) {
  auto        el = random_graph(300, 900, GetParam());
  adjacency<> g(el);
  EXPECT_EQ(bfs_distances(g, 5), reference_bfs_distances(g, 5));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BfsParam, ::testing::Values(11, 22, 33, 44, 55));

TEST(Bfs, PathGraphDistances) {
  auto g    = path_graph(10);
  auto dist = bfs_distances(g, 0);
  for (vertex_id_t v = 0; v < 10; ++v) EXPECT_EQ(dist[v], v);
}

TEST(Bfs, DisconnectedStaysUnreached) {
  edge_list<> el(4);
  el.push_back(0, 1);
  el.push_back(1, 0);
  adjacency<> g(el);
  auto        parents = bfs_top_down(g, 0);
  EXPECT_EQ(parents[2], nw::null_vertex<>);
  EXPECT_EQ(parents[3], nw::null_vertex<>);
}

TEST(Bfs, SingleVertexGraph) {
  edge_list<> el(1);
  adjacency<> g(el, 1);
  auto        parents = bfs_direction_optimizing(g, 0);
  EXPECT_EQ(parents[0], 0u);
}

TEST(Bfs, StarForcesBottomUpSwitch) {
  // Star with a huge frontier after one hop; exercises the heuristic switch.
  auto g       = star_graph(5000);
  auto parents = bfs_direction_optimizing(g, 0, /*alpha=*/1, /*beta=*/100000);
  for (std::size_t v = 1; v < g.size(); ++v) EXPECT_EQ(parents[v], 0u);
}

// --- connected components ---------------------------------------------------

class CcParam : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CcParam, LabelPropagationMatchesReference) {
  auto        el = random_graph(300, 450, GetParam());  // sparse: multiple comps
  adjacency<> g(el);
  EXPECT_TRUE(same_partition(cc_label_propagation(g), reference_components(g)));
}

TEST_P(CcParam, ShiloachVishkinMatchesReference) {
  auto        el = random_graph(300, 450, GetParam());
  adjacency<> g(el);
  EXPECT_TRUE(same_partition(cc_shiloach_vishkin(g), reference_components(g)));
}

TEST_P(CcParam, AfforestMatchesReference) {
  auto        el = random_graph(300, 450, GetParam());
  adjacency<> g(el);
  EXPECT_TRUE(same_partition(cc_afforest(g), reference_components(g)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CcParam, ::testing::Values(101, 202, 303, 404, 505));

TEST(Cc, IsolatedVerticesAreSingletons) {
  edge_list<> el(5);
  el.push_back(0, 1);
  el.push_back(1, 0);
  adjacency<> g(el);
  auto        labels = cc_afforest(g);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_NE(labels[2], labels[0]);
  EXPECT_NE(labels[2], labels[3]);
  EXPECT_EQ(count_components(labels), 4u);
}

TEST(Cc, CountAndLargestHelpers) {
  std::vector<vertex_id_t> labels{0, 0, 1, 0, 2, 2};
  EXPECT_EQ(count_components(labels), 3u);
  EXPECT_EQ(largest_component_size(labels), 3u);
}

TEST(Cc, GiantComponentPlusFringe) {
  // Dense core of 100 + 50 isolated pairs: exercises Afforest's skip logic.
  edge_list<> el(200);
  nw::xoshiro256ss rng(7);
  for (int i = 0; i < 600; ++i) {
    auto u = static_cast<vertex_id_t>(rng.bounded(100));
    auto v = static_cast<vertex_id_t>(rng.bounded(100));
    if (u == v) continue;
    el.push_back(u, v);
    el.push_back(v, u);
  }
  // Make the core definitely connected.
  for (vertex_id_t v = 1; v < 100; ++v) {
    el.push_back(0, v);
    el.push_back(v, 0);
  }
  for (vertex_id_t p = 0; p < 50; ++p) {
    el.push_back(100 + 2 * p, 101 + 2 * p);
    el.push_back(101 + 2 * p, 100 + 2 * p);
  }
  el.sort_and_unique();
  adjacency<> g(el);
  auto        labels = cc_afforest(g);
  EXPECT_TRUE(same_partition(labels, reference_components(g)));
  EXPECT_EQ(count_components(labels), 51u);
  EXPECT_EQ(largest_component_size(labels), 100u);
}

// --- SSSP ---------------------------------------------------------------------

namespace {
adjacency<float> weighted_random_graph(std::size_t n, std::size_t m, std::uint64_t seed) {
  nw::xoshiro256ss rng(seed);
  edge_list<float> el(n);
  for (std::size_t i = 0; i < m; ++i) {
    auto  u = static_cast<vertex_id_t>(rng.bounded(n));
    auto  v = static_cast<vertex_id_t>(rng.bounded(n));
    float w = 0.1f + static_cast<float>(rng.uniform()) * 9.9f;
    if (u == v) continue;
    el.push_back(u, v, w);
    el.push_back(v, u, w);
  }
  return adjacency<float>(el, n);
}
}  // namespace

class SsspParam : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SsspParam, DeltaSteppingMatchesDijkstra) {
  auto g        = weighted_random_graph(150, 600, GetParam());
  auto dijkstra = sssp_dijkstra(g, 0);
  for (float delta : {0.5f, 2.0f, 20.0f}) {
    auto ds = sssp_delta_stepping(g, 0, delta);
    ASSERT_EQ(ds.size(), dijkstra.size());
    for (std::size_t v = 0; v < ds.size(); ++v) {
      if (dijkstra[v] == infinite_distance<float>) {
        EXPECT_EQ(ds[v], infinite_distance<float>);
      } else {
        EXPECT_NEAR(ds[v], dijkstra[v], 1e-4) << "vertex " << v << " delta " << delta;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SsspParam, ::testing::Values(3, 13, 23));

TEST(Sssp, KnownSmallGraph) {
  edge_list<float> el(4);
  el.push_back(0, 1, 1.0f);
  el.push_back(1, 0, 1.0f);
  el.push_back(1, 2, 2.0f);
  el.push_back(2, 1, 2.0f);
  el.push_back(0, 2, 5.0f);
  el.push_back(2, 0, 5.0f);
  adjacency<float> g(el, 4);
  auto             d = sssp_dijkstra(g, 0);
  EXPECT_FLOAT_EQ(d[0], 0.0f);
  EXPECT_FLOAT_EQ(d[1], 1.0f);
  EXPECT_FLOAT_EQ(d[2], 3.0f);  // 0-1-2 beats the direct 5.0 edge
  EXPECT_EQ(d[3], infinite_distance<float>);
}

// --- betweenness -----------------------------------------------------------------

TEST(Betweenness, PathGraphCenterDominates) {
  auto g  = path_graph(5);  // 0-1-2-3-4
  auto bc = betweenness_centrality(g, /*normalized=*/false);
  EXPECT_DOUBLE_EQ(bc[0], 0.0);
  EXPECT_DOUBLE_EQ(bc[1], 3.0);  // pairs (0,2), (0,3), (0,4)
  EXPECT_DOUBLE_EQ(bc[2], 4.0);  // pairs (0,3), (0,4), (1,3), (1,4)
  EXPECT_DOUBLE_EQ(bc[3], 3.0);
  EXPECT_DOUBLE_EQ(bc[4], 0.0);
}

TEST(Betweenness, StarCenterTakesAll) {
  auto g  = star_graph(6);
  auto bc = betweenness_centrality(g, /*normalized=*/false);
  EXPECT_DOUBLE_EQ(bc[0], 15.0);  // C(6,2) pairs all route through the hub
  for (std::size_t v = 1; v < g.size(); ++v) EXPECT_DOUBLE_EQ(bc[v], 0.0);
}

TEST(Betweenness, CycleIsUniform) {
  edge_list<> el(6);
  for (vertex_id_t v = 0; v < 6; ++v) {
    el.push_back(v, (v + 1) % 6);
    el.push_back((v + 1) % 6, v);
  }
  el.sort_and_unique();
  adjacency<> g(el);
  auto        bc = betweenness_centrality(g, false);
  for (std::size_t v = 1; v < 6; ++v) EXPECT_NEAR(bc[v], bc[0], 1e-12);
}

TEST(Betweenness, NormalizationScales) {
  auto g   = star_graph(6);
  auto raw = betweenness_centrality(g, false);
  auto nrm = betweenness_centrality(g, true);
  double scale = 2.0 / (6.0 * 5.0);  // n = 7
  EXPECT_NEAR(nrm[0], raw[0] * scale, 1e-12);
}

TEST(Betweenness, SplitShortestPathsShareCredit) {
  // 4-cycle: two equal-length paths between opposite corners.
  edge_list<> el(4);
  for (vertex_id_t v = 0; v < 4; ++v) {
    el.push_back(v, (v + 1) % 4);
    el.push_back((v + 1) % 4, v);
  }
  el.sort_and_unique();
  adjacency<> g(el);
  auto        bc = betweenness_centrality(g, false);
  for (std::size_t v = 0; v < 4; ++v) EXPECT_NEAR(bc[v], 0.5, 1e-12);
}

TEST(Betweenness, ApproxConvergesToExactOnFullSampling) {
  auto        el = random_graph(60, 200, 77);
  adjacency<> g(el);
  auto        exact  = betweenness_centrality(g, false);
  auto        approx = betweenness_centrality_approx(g, g.size(), 42);
  // Full sampling with replacement is unbiased but not exact; demand the top
  // vertex agrees and the scale is in the right ballpark.
  auto imax_exact  = std::max_element(exact.begin(), exact.end()) - exact.begin();
  auto imax_approx = std::max_element(approx.begin(), approx.end()) - approx.begin();
  EXPECT_EQ(imax_exact, imax_approx);
}

// --- closeness / harmonic / eccentricity ---------------------------------------

TEST(Closeness, PathGraphKnownValues) {
  auto g = path_graph(4);  // 0-1-2-3
  auto c = closeness_centrality(g);
  EXPECT_NEAR(c[0], 3.0 / 6.0, 1e-12);
  EXPECT_NEAR(c[1], 3.0 / 4.0, 1e-12);
  EXPECT_NEAR(c[2], 3.0 / 4.0, 1e-12);
  EXPECT_NEAR(c[3], 3.0 / 6.0, 1e-12);
}

TEST(Closeness, IsolatedVertexIsZero) {
  edge_list<> el(3);
  el.push_back(0, 1);
  el.push_back(1, 0);
  adjacency<> g(el);
  auto        c = closeness_centrality(g);
  EXPECT_DOUBLE_EQ(c[2], 0.0);
}

TEST(Harmonic, StarKnownValues) {
  auto g = star_graph(4);
  auto h = harmonic_closeness_centrality(g);
  EXPECT_NEAR(h[0], 4.0, 1e-12);            // hub: four at distance 1
  EXPECT_NEAR(h[1], 1.0 + 3.0 * 0.5, 1e-12);  // leaf: hub at 1, three at 2
}

TEST(Eccentricity, PathGraph) {
  auto g = path_graph(5);
  auto e = eccentricity(g);
  EXPECT_EQ(e[0], 4u);
  EXPECT_EQ(e[2], 2u);
  EXPECT_EQ(e[4], 4u);
}

TEST(Eccentricity, GreaterOrEqualToAnyDistance) {
  auto        el = random_graph(100, 300, 9);
  adjacency<> g(el);
  auto        ecc  = eccentricity(g);
  auto        dist = bfs_distances(g, 0);
  for (std::size_t v = 0; v < g.size(); ++v) {
    if (dist[v] != nw::null_vertex<>) {
      EXPECT_GE(ecc[0], dist[v]);
    }
  }
}

// --- pagerank --------------------------------------------------------------------

TEST(PageRank, SumsToOne) {
  auto        el = random_graph(200, 800, 31);
  adjacency<> g(el);
  auto        pr  = pagerank(g);
  double      sum = 0;
  for (auto r : pr) sum += r;
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(PageRank, StarHubDominates) {
  auto g  = star_graph(20);
  auto pr = pagerank(g);
  for (std::size_t v = 1; v < g.size(); ++v) EXPECT_GT(pr[0], pr[v]);
  // All leaves are symmetric.
  for (std::size_t v = 2; v < g.size(); ++v) EXPECT_NEAR(pr[v], pr[1], 1e-12);
}

TEST(PageRank, RegularGraphIsUniform) {
  edge_list<> el(8);
  for (vertex_id_t v = 0; v < 8; ++v) {
    el.push_back(v, (v + 1) % 8);
    el.push_back((v + 1) % 8, v);
  }
  el.sort_and_unique();
  adjacency<> g(el);
  auto        pr = pagerank(g);
  for (auto r : pr) EXPECT_NEAR(r, 1.0 / 8.0, 1e-9);
}

// --- k-core -----------------------------------------------------------------------

TEST(KCore, CliquePlusTail) {
  // K4 on {0,1,2,3} plus a tail 3-4-5.
  edge_list<> el(6);
  for (vertex_id_t u = 0; u < 4; ++u) {
    for (vertex_id_t v = 0; v < 4; ++v) {
      if (u != v) el.push_back(u, v);
    }
  }
  el.push_back(3, 4);
  el.push_back(4, 3);
  el.push_back(4, 5);
  el.push_back(5, 4);
  el.sort_and_unique();
  adjacency<> g(el);
  auto        core = kcore_decomposition(g);
  for (vertex_id_t v = 0; v < 4; ++v) EXPECT_EQ(core[v], 3u);
  EXPECT_EQ(core[4], 1u);
  EXPECT_EQ(core[5], 1u);
}

TEST(KCore, CycleIsTwoCore) {
  edge_list<> el(5);
  for (vertex_id_t v = 0; v < 5; ++v) {
    el.push_back(v, (v + 1) % 5);
    el.push_back((v + 1) % 5, v);
  }
  el.sort_and_unique();
  adjacency<> g(el);
  for (auto c : kcore_decomposition(g)) EXPECT_EQ(c, 2u);
}

// --- triangles ---------------------------------------------------------------------

TEST(Triangles, KnownCounts) {
  // K4 has 4 triangles.
  edge_list<> el(4);
  for (vertex_id_t u = 0; u < 4; ++u) {
    for (vertex_id_t v = 0; v < 4; ++v) {
      if (u != v) el.push_back(u, v);
    }
  }
  el.sort_and_unique();
  adjacency<> g(el);
  EXPECT_EQ(triangle_count(g), 4u);
}

TEST(Triangles, TriangleFreeGraph) {
  auto g = path_graph(20);
  EXPECT_EQ(triangle_count(g), 0u);
}

TEST(Triangles, MatchesBruteForce) {
  auto        el = random_graph(40, 200, 57);
  adjacency<> g(el);
  // Brute force over ordered triples.
  auto        has_edge = [&](vertex_id_t u, vertex_id_t v) {
    auto nbrs = g[u];
    return std::find(nbrs.begin(), nbrs.end(), v) != nbrs.end();
  };
  std::size_t expected = 0;
  for (vertex_id_t a = 0; a < 40; ++a) {
    for (vertex_id_t b = a + 1; b < 40; ++b) {
      if (!has_edge(a, b)) continue;
      for (vertex_id_t c = b + 1; c < 40; ++c) {
        if (has_edge(a, c) && has_edge(b, c)) ++expected;
      }
    }
  }
  EXPECT_EQ(triangle_count(g), expected);
}
