// tests/test_motif.cpp — the parallel wedge/triad/butterfly census
// (nwhy/algorithms/motif.hpp) against the definitional serial oracle
// (nwhy/ref/serial_motif.hpp) and the planted closed forms.  All counters
// are integers, so every comparison is exact at every thread count.
// Replay a failing seed with `NWHY_TEST_SEED=<n> ./tests/test_motif`.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "nwhy/nwhypergraph.hpp"
#include "nwhy/ref/ref.hpp"
#include "prop_harness.hpp"
#include "test_util.hpp"

using namespace nw::hypergraph;
using nw::vertex_id_t;
namespace ref = nw::hypergraph::ref;

namespace {

/// Field-by-field comparison across the engine/oracle struct types.
void expect_census_eq(const motif_census& got, const ref::motif_census& want) {
  EXPECT_EQ(got.wedges, want.wedges) << "wedges";
  EXPECT_EQ(got.triads, want.triads) << "triads";
  EXPECT_EQ(got.open_wedges, want.open_wedges) << "open wedges";
  EXPECT_EQ(got.butterflies, want.butterflies) << "butterflies";
}

}  // namespace

// --- differential: engine vs serial oracle across the ladder -----------------------

TEST(Motif, CensusMatchesSerialOracle) {
  nwtest::concurrency_guard guard;
  for (unsigned threads : nwtest::differential_thread_counts()) {
    nw::par::thread_pool::set_default_concurrency(threads);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    for (auto seed : nwtest::differential_seeds(0x307F'0000)) {
      NWHY_SEED_TRACE(seed);
      NWHypergraph hg(gen::arbitrary_hypergraph(seed));
      auto         inc = ref::from_biedgelist(hg.edge_list());
      expect_census_eq(hg.motifs(), ref::motif_counts(inc));
    }
  }
}

TEST(Motif, CensusIsInvariantUnderStorageRelabeling) {
  nwtest::concurrency_guard guard;
  for (auto seed : nwtest::differential_seeds(0x3080'0000)) {
    NWHY_SEED_TRACE(seed);
    NWHypergraph hg(gen::arbitrary_hypergraph(seed));
    auto         before = hg.motifs();
    hg.relabel_by_degree();
    EXPECT_EQ(hg.motifs(), before);
  }
}

TEST(Motif, CensusThroughPendingDeltaMatchesCompactedCensus) {
  // A pending mutation routes motifs() through the composed serial census;
  // compacting and re-running the parallel path must agree.
  nwtest::concurrency_guard guard;
  for (auto seed : nwtest::differential_seeds(0x3081'0000)) {
    NWHY_SEED_TRACE(seed);
    NWHypergraph hg(gen::arbitrary_hypergraph(seed));
    const auto   ne = hg.num_hyperedges();
    if (ne == 0) continue;
    hg.update_edge(static_cast<vertex_id_t>(seed % ne),
                   {0, static_cast<vertex_id_t>(hg.num_hypernodes() / 2)});
    auto through_delta = hg.motifs();  // serial composed path while pending
    hg.compact();
    EXPECT_EQ(hg.motifs(), through_delta);
  }
}

// --- planted closed forms ----------------------------------------------------------

TEST(Motif, PlantedCliquesMatchClosedForm) {
  nwtest::concurrency_guard guard;
  for (unsigned threads : nwtest::differential_thread_counts()) {
    nw::par::thread_pool::set_default_concurrency(threads);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    for (auto seed : nwtest::differential_seeds(0x3082'0000)) {
      NWHY_SEED_TRACE(seed);
      auto plant = gen::planted_clique_hypergraph(1 + seed % 6, seed);
      NWHypergraph hg(plant.el);
      auto         census = hg.motifs();
      EXPECT_EQ(census.wedges, plant.wedges);
      EXPECT_EQ(census.triads, plant.triads);
      EXPECT_EQ(census.open_wedges, plant.wedges - plant.triads);
      EXPECT_EQ(census.butterflies, plant.butterflies);
    }
  }
}

TEST(Motif, Figure1Census) {
  NWHypergraph hg(nwtest::figure1_hypergraph());
  auto         census = hg.motifs();
  // Fig. 1: wedge centers are nodes 1, 2 (e0/e1), 4 (e1/e2), 6 (e2/e3);
  // only e0/e1 overlap twice, closing both of its wedges and forming the
  // single butterfly {e0, e1} x {1, 2}.
  EXPECT_EQ(census.wedges, 4u);
  EXPECT_EQ(census.triads, 2u);
  EXPECT_EQ(census.open_wedges, 2u);
  EXPECT_EQ(census.butterflies, 1u);
}

// --- edge cases --------------------------------------------------------------------

TEST(Motif, DegenerateShapesCountZero) {
  // Degree-one hypernodes center no wedges.
  biedgelist<> disjoint;
  disjoint.push_back(0, 0);
  disjoint.push_back(0, 1);
  disjoint.push_back(1, 2);
  NWHypergraph hg(disjoint);
  EXPECT_EQ(hg.motifs(), (motif_census{0, 0, 0, 0}));
}

TEST(Motif, CensusIsDeterministicAcrossRuns) {
  nwtest::concurrency_guard guard;
  nw::par::thread_pool::set_default_concurrency(
      std::max(1u, std::thread::hardware_concurrency()));
  NWHypergraph hg(gen::uniform_random_hypergraph(60, 90, 5, 0x3083'0000));
  auto         first = hg.motifs();
  for (int i = 0; i < 3; ++i) EXPECT_EQ(hg.motifs(), first);
}
