// tests/test_differential.cpp — the differential correctness harness.
//
// Every parallel algorithm family is pitted against the serial oracles in
// nwhy/ref/ over a stream of generated hypergraphs (gen::arbitrary_hypergraph
// dispatches across uniform / power-law / community / nested / star /
// planted-chain / planted-toplex / adversarial shapes), at thread counts
// {1, 2, 4, hardware}, across the bipartite and adjoin representations, and
// across all s-line construction algorithms.  Distances, line-graph edge
// sets, toplex sets, core numbers and the distance-aggregate centralities
// must agree *bit-exactly*; component labels must agree up to renaming.
//
// Replay: every assertion failure embeds the generator seed and the
// one-command repro (`NWHY_TEST_SEED=<n> ./tests/test_differential`).
// Budget: `NWHY_TEST_ITERS=<k>` scales the seed stream (default 24);
// check.sh --differential and scripts/sanitize.sh tsan use smaller budgets.
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "nwhy/algorithms/hyper_kcore.hpp"
#include "nwhy/nwhypergraph.hpp"
#include "nwhy/ref/ref.hpp"
#include "prop_harness.hpp"
#include "test_util.hpp"

using namespace nw::hypergraph;
using nw::vertex_id_t;
using nwtest::same_partition;
namespace ref = nw::hypergraph::ref;

namespace {

/// A few BFS sources spread across the hyperedge id range.
std::vector<vertex_id_t> sources_for(std::size_t ne) {
  std::vector<vertex_id_t> s;
  if (ne == 0) return s;
  s.push_back(0);
  if (ne > 2) s.push_back(static_cast<vertex_id_t>(ne / 2));
  if (ne > 1) s.push_back(static_cast<vertex_id_t>(ne - 1));
  return s;
}

/// One label vector across both entity classes, so a parallel engine that
/// splits a component at the edge/node boundary cannot pass.
std::vector<vertex_id_t> concat_labels(const std::vector<vertex_id_t>& edge,
                                       const std::vector<vertex_id_t>& node) {
  std::vector<vertex_id_t> all = edge;
  all.insert(all.end(), node.begin(), node.end());
  return all;
}

const std::vector<std::size_t> kSValues = {1, 2, 3};

}  // namespace

// --- harness self-checks -----------------------------------------------------------

TEST(Harness, SeedKnobsControlTheStream) {
  // Save whatever the invoking environment pinned so this test does not
  // clobber an operator's replay run.
  const char* old_seed  = std::getenv("NWHY_TEST_SEED");
  const char* old_iters = std::getenv("NWHY_TEST_ITERS");
  std::string saved_seed  = old_seed ? old_seed : "";
  std::string saved_iters = old_iters ? old_iters : "";

  setenv("NWHY_TEST_SEED", "42", 1);
  EXPECT_EQ(nwtest::differential_seeds(1000), (std::vector<std::uint64_t>{42}));
  unsetenv("NWHY_TEST_SEED");

  setenv("NWHY_TEST_ITERS", "3", 1);
  auto stream = nwtest::differential_seeds(1000);
  ASSERT_EQ(stream.size(), 3u);
  EXPECT_EQ(stream.front(), 1000u);
  EXPECT_EQ(stream.back(), 1002u);
  unsetenv("NWHY_TEST_ITERS");

  if (old_seed) setenv("NWHY_TEST_SEED", saved_seed.c_str(), 1);
  if (old_iters) setenv("NWHY_TEST_ITERS", saved_iters.c_str(), 1);
}

TEST(Harness, ThreadCountsAreDedupedAndAscending) {
  auto counts = nwtest::differential_thread_counts();
  ASSERT_FALSE(counts.empty());
  EXPECT_EQ(counts.front(), 1u);
  for (std::size_t i = 1; i < counts.size(); ++i) EXPECT_LT(counts[i - 1], counts[i]);
}

// --- BFS family ---------------------------------------------------------------------

TEST(Differential, BfsDistancesMatchSerialOracle) {
  nwtest::concurrency_guard guard;
  for (unsigned threads : nwtest::differential_thread_counts()) {
    nw::par::thread_pool::set_default_concurrency(threads);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    for (auto seed : nwtest::differential_seeds(0x0BF5'0000)) {
      NWHY_SEED_TRACE(seed);
      NWHypergraph hg(gen::arbitrary_hypergraph(seed));
      auto         inc = ref::from_biedgelist(hg.edge_list());
      for (vertex_id_t src : sources_for(hg.num_hyperedges())) {
        SCOPED_TRACE("src=" + std::to_string(src));
        auto oracle = ref::bfs_levels(inc, src);

        auto td = hyper_bfs_top_down(hg.hyperedges(), hg.hypernodes(), src);
        EXPECT_EQ(td.dist_edge, oracle.dist_edge) << "hyper_bfs_top_down";
        EXPECT_EQ(td.dist_node, oracle.dist_node) << "hyper_bfs_top_down";

        auto bu = hyper_bfs_bottom_up(hg.hyperedges(), hg.hypernodes(), src);
        EXPECT_EQ(bu.dist_edge, oracle.dist_edge) << "hyper_bfs_bottom_up";
        EXPECT_EQ(bu.dist_node, oracle.dist_node) << "hyper_bfs_bottom_up";

        auto dir = hyper_bfs(hg.hyperedges(), hg.hypernodes(), src);
        EXPECT_EQ(dir.dist_edge, oracle.dist_edge) << "hyper_bfs (direction-optimizing)";
        EXPECT_EQ(dir.dist_node, oracle.dist_node) << "hyper_bfs (direction-optimizing)";

        auto [ae, an] = adjoin_bfs_distances(hg.adjoin(), src);
        EXPECT_EQ(ae, oracle.dist_edge) << "adjoin_bfs_distances";
        EXPECT_EQ(an, oracle.dist_node) << "adjoin_bfs_distances";
      }
    }
  }
}

// --- connected components family ----------------------------------------------------

TEST(Differential, ConnectedComponentsMatchSerialOracle) {
  nwtest::concurrency_guard guard;
  for (unsigned threads : nwtest::differential_thread_counts()) {
    nw::par::thread_pool::set_default_concurrency(threads);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    for (auto seed : nwtest::differential_seeds(0x0CC0'0000)) {
      NWHY_SEED_TRACE(seed);
      NWHypergraph hg(gen::arbitrary_hypergraph(seed));
      auto         inc    = ref::from_biedgelist(hg.edge_list());
      auto         oracle = ref::cc_labels(inc);
      auto         expect = concat_labels(oracle.labels_edge, oracle.labels_node);

      auto cc = hg.connected_components();
      EXPECT_TRUE(same_partition(concat_labels(cc.labels_edge, cc.labels_node), expect))
          << "hyper_cc";

      auto aff = hg.connected_components_adjoin(adjoin_cc_engine::afforest);
      EXPECT_TRUE(same_partition(concat_labels(aff.labels_edge, aff.labels_node), expect))
          << "adjoin_cc (afforest)";

      auto lp = hg.connected_components_adjoin(adjoin_cc_engine::label_propagation);
      EXPECT_TRUE(same_partition(concat_labels(lp.labels_edge, lp.labels_node), expect))
          << "adjoin_cc (label propagation)";
    }
  }
}

// --- s-line-graph construction family -----------------------------------------------

TEST(Differential, SLineConstructionAlgorithmsMatchSerialOracle) {
  nwtest::concurrency_guard guard;
  for (unsigned threads : nwtest::differential_thread_counts()) {
    nw::par::thread_pool::set_default_concurrency(threads);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    for (auto seed : nwtest::differential_seeds(0x051E'0000)) {
      NWHY_SEED_TRACE(seed);
      NWHypergraph hg(gen::arbitrary_hypergraph(seed));
      auto         inc = ref::from_biedgelist(hg.edge_list());
      const auto&  E   = hg.hyperedges();
      const auto&  N   = hg.hypernodes();
      const auto&  deg = hg.edge_sizes();
      const auto   ne  = hg.num_hyperedges();

      std::vector<vertex_id_t> queue(ne);
      detail::iota_queue(queue);

      // The ensemble emits all three s values from one counting pass.
      auto ensemble = to_two_graph_ensemble(E, N, deg, kSValues);

      for (std::size_t si = 0; si < kSValues.size(); ++si) {
        const std::size_t s = kSValues[si];
        SCOPED_TRACE("s=" + std::to_string(s));
        auto expected = ref::s_line_edges(inc, s);

        EXPECT_EQ(nwtest::canonical_pairs(to_two_graph_naive(E, N, deg, s)), expected)
            << "naive";
        EXPECT_EQ(nwtest::canonical_pairs(to_two_graph_intersection(E, N, deg, s)), expected)
            << "intersection";
        EXPECT_EQ(nwtest::canonical_pairs(to_two_graph_hashmap(E, N, deg, s)), expected)
            << "hashmap (blocked)";
        EXPECT_EQ(nwtest::canonical_pairs(
                      to_two_graph_hashmap_cyclic(E, N, deg, s, threads, 32)),
                  expected)
            << "hashmap (cyclic)";
        EXPECT_EQ(nwtest::csr_pairs(to_two_graph_hashmap_csr(E, N, deg, s)), expected)
            << "hashmap_csr (direct-CSR pipeline)";
        EXPECT_EQ(nwtest::canonical_pairs(
                      to_two_graph_queue_hashmap(queue, E, N, deg, s, ne)),
                  expected)
            << "queue_hashmap (Algorithm 1)";
        EXPECT_EQ(nwtest::canonical_pairs(
                      to_two_graph_queue_intersection(queue, E, N, deg, s, ne)),
                  expected)
            << "queue_intersection (Algorithm 2)";
        EXPECT_EQ(nwtest::canonical_pairs(to_two_graph_neighbor_range(E, N, deg, s)),
                  expected)
            << "neighbor_range";
        EXPECT_EQ(nwtest::canonical_pairs(ensemble[si]), expected) << "ensemble";
        EXPECT_EQ(nwtest::canonical_pairs(
                      threshold_weighted(to_two_graph_weighted(E, N, deg, 1), s)),
                  expected)
            << "weighted + threshold";
      }
    }
  }
}

// --- adjoin-vs-bipartite cross-representation construction --------------------------

TEST(Differential, AdjoinQueueConstructionMatchesSerialOracle) {
  nwtest::concurrency_guard guard;
  for (unsigned threads : nwtest::differential_thread_counts()) {
    nw::par::thread_pool::set_default_concurrency(threads);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    for (auto seed : nwtest::differential_seeds(0x0ADD'0000)) {
      NWHY_SEED_TRACE(seed);
      NWHypergraph hg(gen::arbitrary_hypergraph(seed));
      auto         inc    = ref::from_biedgelist(hg.edge_list());
      const auto&  adjoin = hg.adjoin();

      // Work queue = hyperedge ids inside the shared index set ([0, nE));
      // degrees indexed by shared id.
      std::vector<vertex_id_t> queue(adjoin.nrealedges);
      detail::iota_queue(queue);
      std::vector<std::size_t> adjoin_degrees = adjoin.graph.degrees();

      for (std::size_t s : kSValues) {
        SCOPED_TRACE("s=" + std::to_string(s));
        auto expected = ref::s_line_edges(inc, s);
        EXPECT_EQ(nwtest::canonical_pairs(to_two_graph_queue_hashmap(
                      queue, adjoin.graph, adjoin.graph, adjoin_degrees, s, adjoin.nrealedges)),
                  expected)
            << "queue_hashmap on adjoin";
        EXPECT_EQ(nwtest::canonical_pairs(to_two_graph_queue_intersection(
                      queue, adjoin.graph, adjoin.graph, adjoin_degrees, s, adjoin.nrealedges)),
                  expected)
            << "queue_intersection on adjoin";
      }
    }
  }
}

// --- s-components / s-distance family -----------------------------------------------

TEST(Differential, SComponentsAndSDistanceMatchSerialOracle) {
  nwtest::concurrency_guard guard;
  for (unsigned threads : nwtest::differential_thread_counts()) {
    nw::par::thread_pool::set_default_concurrency(threads);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    for (auto seed : nwtest::differential_seeds(0x0D15'0000)) {
      NWHY_SEED_TRACE(seed);
      NWHypergraph hg(gen::arbitrary_hypergraph(seed));
      auto         inc = ref::from_biedgelist(hg.edge_list());
      const auto   ne  = hg.num_hyperedges();

      for (std::size_t s : kSValues) {
        SCOPED_TRACE("s=" + std::to_string(s));
        auto oracle = ref::s_components(inc, s);
        auto lg     = hg.make_s_linegraph(s);
        auto mat    = lg.s_connected_components();
        auto imp    = hg.s_connected_components_implicit(s);
        ASSERT_EQ(mat.size(), oracle.size());
        ASSERT_EQ(imp.size(), oracle.size());

        // Inactive hyperedges must be null in all three; partitions must
        // agree on the active subset.
        std::vector<vertex_id_t> o_act, m_act, i_act;
        for (std::size_t e = 0; e < oracle.size(); ++e) {
          if (oracle[e] == nw::null_vertex<>) {
            EXPECT_EQ(mat[e], nw::null_vertex<>) << "materialized active set, e=" << e;
            EXPECT_EQ(imp[e], nw::null_vertex<>) << "implicit active set, e=" << e;
          } else {
            o_act.push_back(oracle[e]);
            m_act.push_back(mat[e]);
            i_act.push_back(imp[e]);
          }
        }
        EXPECT_TRUE(same_partition(m_act, o_act)) << "materialized s-components";
        EXPECT_TRUE(same_partition(i_act, o_act)) << "implicit s-components";

        // s-distances (materialized + implicit) on a few src != dst pairs.
        if (ne >= 2) {
          const std::pair<vertex_id_t, vertex_id_t> probes[] = {
              {0, static_cast<vertex_id_t>(ne - 1)},
              {0, static_cast<vertex_id_t>(ne / 2 == 0 ? ne - 1 : ne / 2)},
              {static_cast<vertex_id_t>(ne / 3), static_cast<vertex_id_t>(ne - 1)},
          };
          for (auto [src, dst] : probes) {
            if (src == dst) continue;
            auto od = ref::s_distance(inc, s, src, dst);
            EXPECT_EQ(lg.s_distance(src, dst), od)
                << "materialized s_distance(" << src << ", " << dst << ")";
            EXPECT_EQ(hg.s_distance_implicit(s, src, dst), od)
                << "implicit s_distance(" << src << ", " << dst << ")";
          }
        }
      }
    }
  }
}

// --- s-centrality family (bit-exact doubles) ----------------------------------------

TEST(Differential, SCentralitiesBitExactAgainstSerialOracle) {
  nwtest::concurrency_guard guard;
  for (unsigned threads : nwtest::differential_thread_counts()) {
    nw::par::thread_pool::set_default_concurrency(threads);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    for (auto seed : nwtest::differential_seeds(0x0CE7'0000)) {
      NWHY_SEED_TRACE(seed);
      NWHypergraph hg(gen::arbitrary_hypergraph(seed));
      for (std::size_t s : {std::size_t{1}, std::size_t{2}}) {
        SCOPED_TRACE("s=" + std::to_string(s));
        auto lg  = hg.make_s_linegraph(s);
        auto adj = nwtest::csr_to_adjacency(lg.graph());

        // The distance arrays are integer-exact and both sides aggregate in
        // ascending index order, so doubles must match bit for bit.
        auto close = lg.s_closeness_centrality();
        auto harm  = lg.s_harmonic_closeness_centrality();
        auto ecc   = lg.s_eccentricity();
        EXPECT_EQ(close, ref::closeness(adj)) << "closeness";
        EXPECT_EQ(harm, ref::harmonic_closeness(adj)) << "harmonic closeness";
        EXPECT_EQ(ecc, ref::eccentricity(adj)) << "eccentricity";

        // Single-vertex overloads answer from one BFS; they must agree with
        // the all-sources sweep indexed at that vertex.
        for (vertex_id_t v : sources_for(lg.num_vertices())) {
          EXPECT_EQ(lg.s_closeness_centrality(v), close[v]) << "v=" << v;
          EXPECT_EQ(lg.s_harmonic_closeness_centrality(v), harm[v]) << "v=" << v;
          EXPECT_EQ(lg.s_eccentricity(v), ecc[v]) << "v=" << v;
        }
      }
    }
  }
}

// --- toplex family ------------------------------------------------------------------

TEST(Differential, ToplexesMatchSerialOracle) {
  nwtest::concurrency_guard guard;
  for (unsigned threads : nwtest::differential_thread_counts()) {
    nw::par::thread_pool::set_default_concurrency(threads);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    for (auto seed : nwtest::differential_seeds(0x0709'0000)) {
      NWHY_SEED_TRACE(seed);
      NWHypergraph hg(gen::arbitrary_hypergraph(seed));
      auto         inc    = ref::from_biedgelist(hg.edge_list());
      auto         expect = ref::toplexes(inc);
      EXPECT_EQ(hg.toplexes(), expect) << "parallel toplexes (Algorithm 3)";
      EXPECT_EQ(toplexes_serial(hg.hyperedges()), expect) << "toplexes_serial";
    }
  }
}

// --- core decomposition family ------------------------------------------------------

TEST(Differential, CoreDecompositionsMatchSerialOracle) {
  nwtest::concurrency_guard guard;
  for (unsigned threads : nwtest::differential_thread_counts()) {
    nw::par::thread_pool::set_default_concurrency(threads);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    for (auto seed : nwtest::differential_seeds(0x0C03'0000)) {
      NWHY_SEED_TRACE(seed);
      NWHypergraph hg(gen::arbitrary_hypergraph(seed));
      auto         inc = ref::from_biedgelist(hg.edge_list());

      // s-core numbers: k-core of the line graph vs the O(n²) peel oracle.
      for (std::size_t s : {std::size_t{1}, std::size_t{2}}) {
        auto lg = hg.make_s_linegraph(s);
        EXPECT_EQ(lg.s_core_numbers(), ref::kcore_numbers(nwtest::csr_to_adjacency(lg.graph())))
            << "s=" << s;
      }

      // (k, l)-core: incremental alternating peel vs whole-round fixpoint
      // recomputation — the greatest fixpoint is unique, so exact equality.
      const std::pair<std::size_t, std::size_t> kls[] = {{1, 1}, {2, 2}, {2, 3}, {3, 2}};
      for (auto [k, l] : kls) {
        auto par_r = kl_core(hg.hyperedges(), hg.hypernodes(), k, l);
        auto ref_r = ref::kl_core(inc, k, l);
        EXPECT_EQ(par_r.edge_alive, ref_r.edge_alive) << "(k, l) = (" << k << ", " << l << ")";
        EXPECT_EQ(par_r.node_alive, ref_r.node_alive) << "(k, l) = (" << k << ", " << l << ")";
      }
    }
  }
}

// --- planted-structure ground truth -------------------------------------------------
//
// These assert against *mathematics*, not against another implementation:
// the generators plant component counts, diameters and toplex sets with
// exactly known values.

TEST(PlantedStructure, ComponentChainsYieldExactCountDiameterAndEmptySPlusOne) {
  nwtest::concurrency_guard guard;
  for (unsigned threads : nwtest::differential_thread_counts()) {
    nw::par::thread_pool::set_default_concurrency(threads);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    for (auto seed : nwtest::differential_seeds(0x0C4A'0000)) {
      NWHY_SEED_TRACE(seed);
      const std::size_t components = 2 + seed % 3;
      const std::size_t length     = 3 + seed % 5;
      const std::size_t s          = 1 + seed % 3;
      auto p = gen::planted_component_chains(components, length, s, seed);
      NWHypergraph hg(std::move(p.el));

      auto lg = hg.make_s_linegraph(s);
      EXPECT_EQ(nwtest::distinct_labels(lg.s_connected_components()), components);
      EXPECT_EQ(nwtest::distinct_labels(hg.s_connected_components_implicit(s)), components);

      // Every component is a path of `length` line-graph vertices.
      EXPECT_EQ(lg.s_diameter(), length - 1);
      for (const auto& chain : p.component_edges) {
        auto d = lg.s_distance(chain.front(), chain.back());
        ASSERT_TRUE(d.has_value());
        EXPECT_EQ(*d, length - 1);
        auto di = hg.s_distance_implicit(s, chain.front(), chain.back());
        ASSERT_TRUE(di.has_value());
        EXPECT_EQ(*di, length - 1);
      }

      // Consecutive chain edges overlap in exactly s hypernodes, so the
      // (s+1)-line graph is empty.
      EXPECT_EQ(hg.make_s_linegraph(s + 1).num_edges(), 0u);
    }
  }
}

TEST(PlantedStructure, ToplexSetsRecoveredExactly) {
  nwtest::concurrency_guard guard;
  for (unsigned threads : nwtest::differential_thread_counts()) {
    nw::par::thread_pool::set_default_concurrency(threads);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    for (auto seed : nwtest::differential_seeds(0x0707'0000)) {
      NWHY_SEED_TRACE(seed);
      const std::size_t toplexes_n = 2 + seed % 4;
      const std::size_t subsets    = 1 + seed % 4;
      const std::size_t size       = 3 + seed % 4;
      auto p = gen::planted_toplex_hypergraph(toplexes_n, subsets, size, seed);
      NWHypergraph hg(std::move(p.el));

      EXPECT_EQ(hg.toplexes(), p.toplex_ids) << "parallel toplexes";
      EXPECT_EQ(toplexes_serial(hg.hyperedges()), p.toplex_ids) << "toplexes_serial";
      EXPECT_EQ(ref::toplexes(ref::from_biedgelist(hg.edge_list())), p.toplex_ids)
          << "serial oracle";
    }
  }
}
