// tests/test_frontier.cpp — the par::frontier engine: bitmap word access,
// parallel clear/count/conversion primitives, the hybrid frontier's
// sparse<->dense life cycle and fused scout channel, and agreement of every
// BFS engine that sits on top of it (graph top-down / bottom-up /
// direction-optimizing / distances, HyperBFS, Hygra) with serial references.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <numeric>
#include <vector>

#include "hygra/algorithms.hpp"
#include "hygra/edge_map.hpp"
#include "nwgraph/algorithms/bfs.hpp"
#include "nwhy/algorithms/hyper_bfs.hpp"
#include "nwhy/gen/generators.hpp"
#include "nwpar/frontier.hpp"
#include "test_util.hpp"

using namespace nw::graph;
using nw::vertex_id_t;
using nwtest::random_graph;
using nwtest::reference_bfs_distances;

namespace {

// Universe sizes straddling word boundaries.
const std::vector<std::size_t> kSizes = {0, 1, 63, 64, 65, 127, 128, 1000, 4097};

/// Deterministic sparse member set of [0, n): every third element plus both
/// boundary bits of every word.
std::vector<vertex_id_t> pattern_ids(std::size_t n) {
  std::vector<vertex_id_t> ids;
  for (std::size_t i = 0; i < n; i += 3) ids.push_back(static_cast<vertex_id_t>(i));
  for (std::size_t i = 63; i < n; i += 64) ids.push_back(static_cast<vertex_id_t>(i));
  for (std::size_t i = 64; i < n; i += 64) ids.push_back(static_cast<vertex_id_t>(i));
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

/// parents[] validity: parents[source] == source; every other reached vertex
/// has a reached parent exactly one BFS level closer to the source.
template <class Graph>
void expect_valid_parents(const Graph& g, vertex_id_t source,
                          const std::vector<vertex_id_t>& parents) {
  auto dist = reference_bfs_distances(g, source);
  ASSERT_EQ(parents.size(), dist.size());
  for (std::size_t v = 0; v < parents.size(); ++v) {
    if (dist[v] == nw::null_vertex<>) {
      EXPECT_EQ(parents[v], nw::null_vertex<>) << "v=" << v;
    } else if (v == source) {
      EXPECT_EQ(parents[v], source);
    } else {
      ASSERT_NE(parents[v], nw::null_vertex<>) << "v=" << v;
      EXPECT_EQ(dist[parents[v]] + 1, dist[v]) << "v=" << v;
    }
  }
}

// --- bitmap word accessors ---------------------------------------------------

TEST(BitmapWords, AccessorsRoundTrip) {
  nw::bitmap bm(130);
  EXPECT_EQ(nw::bitmap::word_bits, 64u);
  EXPECT_EQ(bm.num_words(), 3u);
  bm.set(0);
  bm.set(63);
  bm.set(64);
  bm.set(129);
  EXPECT_EQ(bm.word(0), (std::uint64_t{1} << 63) | 1u);
  EXPECT_EQ(bm.word(1), 1u);
  EXPECT_EQ(bm.word(2), std::uint64_t{1} << 1);
  bm.set_word(1, 0xffffu);
  EXPECT_EQ(bm.count(), 3u + 16u);
  EXPECT_EQ(bm.words().size(), bm.num_words());
}

TEST(BitmapWords, ResizeKeepsCapacityAndZeroes) {
  nw::bitmap bm(4096);
  for (std::size_t i = 0; i < 4096; i += 7) bm.set(i);
  ASSERT_GT(bm.count(), 0u);
  bm.resize(4096);  // same size: all zero again
  EXPECT_EQ(bm.count(), 0u);
  EXPECT_EQ(bm.size(), 4096u);
  bm.resize(100);
  EXPECT_EQ(bm.size(), 100u);
  EXPECT_EQ(bm.num_words(), 2u);
  EXPECT_EQ(bm.count(), 0u);
}

// --- parallel primitives -----------------------------------------------------

TEST(FrontierPrimitives, ParallelCountAndClearMatchSerial) {
  for (unsigned threads : {1u, 2u, 4u}) {
    nw::par::thread_pool pool(threads);
    for (std::size_t n : kSizes) {
      nw::bitmap bm(n);
      auto       ids = pattern_ids(n);
      for (auto v : ids) bm.set(v);
      EXPECT_EQ(nw::par::bitmap_count(bm, pool), bm.count()) << "n=" << n;
      EXPECT_EQ(nw::par::bitmap_count(bm, pool), ids.size()) << "n=" << n;
      nw::par::bitmap_clear(bm, pool);
      EXPECT_EQ(bm.count(), 0u) << "n=" << n;
    }
  }
}

TEST(FrontierPrimitives, SparseDenseRoundTrips) {
  for (unsigned threads : {1u, 2u, 4u}) {
    nw::par::thread_pool pool(threads);
    for (std::size_t n : kSizes) {
      // Patterns: empty, full, single first/last bit, every-third.
      std::vector<std::vector<vertex_id_t>> patterns;
      patterns.emplace_back();  // empty
      if (n > 0) {
        std::vector<vertex_id_t> full(n);
        std::iota(full.begin(), full.end(), 0);
        patterns.push_back(std::move(full));
        patterns.push_back({0});
        patterns.push_back({static_cast<vertex_id_t>(n - 1)});
        patterns.push_back(pattern_ids(n));
      }
      for (const auto& ids : patterns) {
        nw::bitmap bm(n);
        nw::par::bitmap_fill_from(bm, ids, pool);
        EXPECT_EQ(bm.count(), ids.size()) << "n=" << n;
        std::vector<vertex_id_t> out;
        std::size_t              total = nw::par::bitmap_to_sparse(bm, out, pool);
        EXPECT_EQ(total, ids.size()) << "n=" << n;
        EXPECT_EQ(out, ids) << "n=" << n;  // conversion emits sorted ids
      }
    }
  }
}

// --- the hybrid frontier -----------------------------------------------------

TEST(Frontier, AssignAndLazyConversions) {
  nw::par::frontier f(200);
  EXPECT_TRUE(f.empty());
  EXPECT_TRUE(f.has_sparse());
  f.assign_single(7);
  EXPECT_EQ(f.size(), 1u);
  EXPECT_FALSE(f.has_dense());
  EXPECT_TRUE(f.bits().get(7));  // lazy densify
  EXPECT_TRUE(f.has_dense());

  f.assign({3, 100, 199});
  EXPECT_EQ(f.size(), 3u);
  const auto& bits = f.bits();
  EXPECT_TRUE(bits.get(3));
  EXPECT_TRUE(bits.get(100));
  EXPECT_TRUE(bits.get(199));
  EXPECT_FALSE(bits.get(4));
  EXPECT_EQ(f.density_permille(), 3u * 1000 / 200);
}

TEST(Frontier, SparseEmitCommitAndScout) {
  nw::par::frontier f(1000), next(1000);
  f.assign({1, 2, 3});
  // Emit from a parallel loop with fused degrees.
  const auto& ids = f.ids();
  nw::par::parallel_for(0, ids.size(), [&](unsigned tid, std::size_t i) {
    next.emit(tid, static_cast<vertex_id_t>(ids[i] + 10), /*degree=*/5);
  });
  EXPECT_EQ(next.commit_sparse(), 3u);
  EXPECT_EQ(next.take_scout(), 15u);
  EXPECT_EQ(next.take_scout(), 0u);  // drained
  auto sorted = next.ids();
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<vertex_id_t>{11, 12, 13}));
}

TEST(Frontier, DenseEmitCommitRoundTrip) {
  nw::par::frontier f(300);
  f.begin_dense();
  nw::par::parallel_for(0, 300, [&](unsigned tid, std::size_t v) {
    if (v % 5 == 0) f.emit_dense(tid, static_cast<vertex_id_t>(v), /*degree=*/2);
  });
  EXPECT_EQ(f.commit_dense(), 60u);
  EXPECT_TRUE(f.has_dense());
  EXPECT_FALSE(f.has_sparse());
  EXPECT_EQ(f.take_scout(), 120u);
  const auto& ids = f.ids();  // lazy sparsify
  ASSERT_EQ(ids.size(), 60u);
  EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
  for (std::size_t i = 0; i < ids.size(); ++i) EXPECT_EQ(ids[i], i * 5);
}

TEST(Frontier, DenseEmitDuplicatesDoNotInflateSize) {
  nw::par::frontier f(128);
  f.begin_dense();
  // Every worker emits the same two vertices (both plain and fused-scout
  // forms): only the 0->1 flips may count toward size and scout.
  nw::par::parallel_for(0, 64, [&](unsigned tid, std::size_t) {
    f.emit_dense(tid, 7);
    f.emit_dense(tid, 9, /*degree=*/3);
  });
  EXPECT_EQ(f.commit_dense(), 2u);
  EXPECT_EQ(f.take_scout(), 3u);
  auto ids = f.ids();
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<vertex_id_t>{7, 9}));
}

TEST(Frontier, SwapExchangesMembership) {
  nw::par::frontier a(64), b(64);
  a.assign({1, 2});
  b.assign({9});
  a.swap(b);
  EXPECT_EQ(a.size(), 1u);
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(a.ids(), (std::vector<vertex_id_t>{9}));
  // init() keeps the object reusable with fresh membership.
  b.init(64);
  EXPECT_TRUE(b.empty());
  EXPECT_TRUE(b.has_sparse());
}

TEST(Frontier, EnvKnobParsing) {
  setenv("NWHY_TEST_KNOB", "42", 1);
  EXPECT_EQ(nw::par::detail::env_knob("NWHY_TEST_KNOB", 7), 42u);
  setenv("NWHY_TEST_KNOB", "garbage", 1);
  EXPECT_EQ(nw::par::detail::env_knob("NWHY_TEST_KNOB", 7), 7u);
  unsetenv("NWHY_TEST_KNOB");
  EXPECT_EQ(nw::par::detail::env_knob("NWHY_TEST_KNOB", 7), 7u);
  // Defaults (env unset in the test harness): alpha 15, beta 18.
  EXPECT_GT(nw::par::bfs_alpha(), 0u);
  EXPECT_GT(nw::par::bfs_beta(), 0u);
}

// --- BFS engine agreement ----------------------------------------------------

TEST(FrontierBfs, AllGraphVariantsAgreeWithReference) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    adjacency<> g(random_graph(150, 400, seed));
    for (vertex_id_t src : {0u, 17u, 149u}) {
      auto ref = reference_bfs_distances(g, src);
      expect_valid_parents(g, src, bfs_top_down(g, src));
      expect_valid_parents(g, src, bfs_bottom_up(g, src));
      expect_valid_parents(g, src, bfs_direction_optimizing(g, src));
      // Forced extremes: always-bottom-up and always-top-down.
      expect_valid_parents(g, src, bfs_direction_optimizing(g, src, 100000, 1));
      expect_valid_parents(g, src, bfs_direction_optimizing(g, src, 1, 1000000));
      EXPECT_EQ(bfs_distances(g, src), ref);
    }
  }
}

TEST(FrontierBfs, DisconnectedGraphLeavesNulls) {
  // Two cliques, no edge between them.
  edge_list<> el(10);
  for (vertex_id_t u = 0; u < 5; ++u)
    for (vertex_id_t v = 0; v < 5; ++v)
      if (u != v) el.push_back(u, v);
  for (vertex_id_t u = 5; u < 10; ++u)
    for (vertex_id_t v = 5; v < 10; ++v)
      if (u != v) el.push_back(u, v);
  el.sort_and_unique();
  adjacency<> g(el);
  for (auto parents : {bfs_top_down(g, 0), bfs_bottom_up(g, 0),
                       bfs_direction_optimizing(g, 0)}) {
    for (vertex_id_t v = 0; v < 5; ++v) EXPECT_NE(parents[v], nw::null_vertex<>);
    for (vertex_id_t v = 5; v < 10; ++v) EXPECT_EQ(parents[v], nw::null_vertex<>);
  }
}

TEST(FrontierBfs, HyperBfsAlphaBetaExtremesAgree) {
  using namespace nw::hypergraph;
  auto el = gen::uniform_random_hypergraph(120, 150, 4, 99);
  el.sort_and_unique();
  biadjacency<0> hyperedges(el);
  biadjacency<1> hypernodes(el);
  auto           def = hyper_bfs(hyperedges, hypernodes, 0);
  // Force always-bottom-up and always-top-down; distances must agree.
  auto bu = hyper_bfs(hyperedges, hypernodes, 0, 1, 1000000);
  auto td = hyper_bfs(hyperedges, hypernodes, 0, 100000, 1);
  EXPECT_EQ(def.dist_edge, bu.dist_edge);
  EXPECT_EQ(def.dist_node, bu.dist_node);
  EXPECT_EQ(def.dist_edge, td.dist_edge);
  EXPECT_EQ(def.dist_node, td.dist_node);
  // And with the pure engines.
  auto pure_td = hyper_bfs_top_down(hyperedges, hypernodes, 0);
  auto pure_bu = hyper_bfs_bottom_up(hyperedges, hypernodes, 0);
  EXPECT_EQ(def.dist_edge, pure_td.dist_edge);
  EXPECT_EQ(def.dist_node, pure_td.dist_node);
  EXPECT_EQ(def.dist_edge, pure_bu.dist_edge);
  EXPECT_EQ(def.dist_node, pure_bu.dist_node);
}

TEST(FrontierBfs, HygraAgreesWithHyperBfsReachability) {
  using namespace nw::hypergraph;
  auto el = gen::uniform_random_hypergraph(80, 120, 3, 7);
  el.sort_and_unique();
  biadjacency<0> hyperedges(el);
  biadjacency<1> hypernodes(el);
  auto           hy  = nw::hygra::hygra_bfs(hyperedges, hypernodes, 0);
  auto           ref = hyper_bfs(hyperedges, hypernodes, 0);
  ASSERT_EQ(hy.parents_edge.size(), ref.dist_edge.size());
  for (std::size_t e = 0; e < hy.parents_edge.size(); ++e) {
    EXPECT_EQ(hy.parents_edge[e] != nw::null_vertex<>, ref.dist_edge[e] != nw::null_vertex<>)
        << "e=" << e;
  }
  for (std::size_t v = 0; v < hy.parents_node.size(); ++v) {
    EXPECT_EQ(hy.parents_node[v] != nw::null_vertex<>, ref.dist_node[v] != nw::null_vertex<>)
        << "v=" << v;
  }
}

TEST(FrontierBfs, HygraEdgeMapDenseMatchesSparse) {
  using namespace nw::hypergraph;
  auto el = gen::uniform_random_hypergraph(60, 80, 3, 11);
  el.sort_and_unique();
  biadjacency<0> hyperedges(el);
  biadjacency<1> hypernodes(el);

  // Same CAS-claim step through all three entry points; the *set* of
  // claimed hypernodes is deterministic (every hypernode touched by a
  // frontier hyperedge gets claimed exactly once), so the output subsets
  // must be equal as sets.
  std::vector<vertex_id_t> all(hyperedges.size());
  std::iota(all.begin(), all.end(), 0);
  auto run = [&](int mode) {
    std::vector<vertex_id_t> claimed(hypernodes.size(), nw::null_vertex<>);
    auto                     update = [&](vertex_id_t u, vertex_id_t v) {
      return nw::compare_and_swap(claimed[v], nw::null_vertex<>, u);
    };
    auto cond = [&](vertex_id_t v) { return nw::atomic_load(claimed[v]) == nw::null_vertex<>; };
    nw::hygra::vertex_subset f(all);
    nw::hygra::vertex_subset out =
        mode == 0 ? nw::hygra::edge_map_sparse(hyperedges, f, update, cond)
        : mode == 1
            ? nw::hygra::edge_map_dense(hypernodes, f, hyperedges.size(), update, cond)
            : nw::hygra::edge_map(hyperedges, hypernodes, f, update, cond);
    auto ids = out.ids();
    std::sort(ids.begin(), ids.end());
    return ids;
  };
  auto sparse = run(0), dense = run(1), hybrid = run(2);
  EXPECT_EQ(sparse, dense);
  EXPECT_EQ(sparse, hybrid);
  EXPECT_GT(sparse.size(), 0u);
}

TEST(FrontierBfs, HygraVertexSubsetHybridViews) {
  nw::hygra::vertex_subset s(std::vector<vertex_id_t>{2, 66, 130});
  const auto&              bits = s.bits(200);
  EXPECT_TRUE(bits.get(2));
  EXPECT_TRUE(bits.get(66));
  EXPECT_TRUE(bits.get(130));
  EXPECT_EQ(bits.count(), 3u);
  EXPECT_EQ(s.size(), 3u);

  nw::bitmap bm(200);
  bm.set(5);
  bm.set(64);
  nw::hygra::vertex_subset d(std::move(bm), 2);
  EXPECT_TRUE(d.is_dense());
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.ids(), (std::vector<vertex_id_t>{5, 64}));
}

TEST(FrontierBfs, HygraVertexSubsetDenseWidening) {
  // A dense-only subset asked for a *larger* universe must keep its members:
  // the rebuild path has to materialize the sparse ids from the old bitmap
  // first, not refill from a stale/empty id list.
  nw::bitmap bm(100);
  bm.set(3);
  bm.set(64);
  bm.set(99);
  nw::hygra::vertex_subset d(std::move(bm), 3);
  ASSERT_TRUE(d.is_dense());  // sparse list not materialized yet
  const auto& wide = d.bits(500);
  EXPECT_EQ(wide.size(), 500u);
  EXPECT_EQ(wide.count(), 3u);
  EXPECT_TRUE(wide.get(3));
  EXPECT_TRUE(wide.get(64));
  EXPECT_TRUE(wide.get(99));
  EXPECT_EQ(d.size(), 3u);
  EXPECT_EQ(d.ids(), (std::vector<vertex_id_t>{3, 64, 99}));
}

}  // namespace
