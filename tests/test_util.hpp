// tests/test_util.hpp — shared fixtures and canonicalization helpers.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "nwhy.hpp"

// GoogleTest compatibility: GTEST_FLAG_SET was introduced in GTest 1.12, but
// conda toolchains commonly resolve find_package(GTest) to 1.11 (the
// GTest_DIR cache entry records which one won).  Death-test files use
// GTEST_FLAG_SET(death_test_style, ...), so provide the 1.12 definition when
// the installed GTest predates it.  The expansion below is byte-for-byte the
// one GTest >= 1.12 ships in gtest-port.h.
#ifndef GTEST_FLAG_SET
#define GTEST_FLAG_SET(name, value) (void)(::testing::GTEST_FLAG(name) = value)
#endif

namespace nwtest {

using nw::vertex_id_t;

/// Canonical form of a line-graph edge list: sorted unique {lo, hi} pairs.
inline std::vector<std::pair<vertex_id_t, vertex_id_t>> canonical_pairs(
    const nw::graph::edge_list<>& el) {
  std::vector<std::pair<vertex_id_t, vertex_id_t>> pairs;
  pairs.reserve(el.size());
  for (std::size_t i = 0; i < el.size(); ++i) {
    vertex_id_t a = el.source(i), b = el.destination(i);
    if (a > b) std::swap(a, b);
    pairs.push_back({a, b});
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  return pairs;
}

/// True when two label arrays induce the same partition of [0, n)
/// (labels themselves may differ).
template <class T>
bool same_partition(const std::vector<T>& a, const std::vector<T>& b) {
  if (a.size() != b.size()) return false;
  std::map<T, T> fwd, bwd;
  for (std::size_t i = 0; i < a.size(); ++i) {
    auto [it1, new1] = fwd.try_emplace(a[i], b[i]);
    if (!new1 && it1->second != b[i]) return false;
    auto [it2, new2] = bwd.try_emplace(b[i], a[i]);
    if (!new2 && it2->second != a[i]) return false;
  }
  return true;
}

/// The paper's Fig. 1 hypergraph: 4 hyperedges over 9 hypernodes.
inline nw::hypergraph::biedgelist<> figure1_hypergraph() {
  nw::hypergraph::biedgelist<> el;
  for (vertex_id_t v : {0, 1, 2}) el.push_back(0, v);
  for (vertex_id_t v : {1, 2, 3, 4}) el.push_back(1, v);
  for (vertex_id_t v : {4, 5, 6}) el.push_back(2, v);
  for (vertex_id_t v : {6, 7, 8}) el.push_back(3, v);
  return el;
}

/// A small deterministic pseudo-random graph edge list (undirected,
/// symmetrized) for graph-algorithm tests.
inline nw::graph::edge_list<> random_graph(std::size_t n, std::size_t m, std::uint64_t seed) {
  nw::xoshiro256ss       rng(seed);
  nw::graph::edge_list<> el(n);
  for (std::size_t i = 0; i < m; ++i) {
    auto u = static_cast<vertex_id_t>(rng.bounded(n));
    auto v = static_cast<vertex_id_t>(rng.bounded(n));
    if (u == v) continue;
    el.push_back(u, v);
    el.push_back(v, u);
  }
  el.sort_and_unique();
  return el;
}

/// Serial reference BFS distances (ground truth for all BFS variants).
template <class Graph>
std::vector<vertex_id_t> reference_bfs_distances(const Graph& g, vertex_id_t s) {
  std::vector<vertex_id_t> dist(g.size(), nw::null_vertex<>);
  std::vector<vertex_id_t> queue;
  dist[s] = 0;
  queue.push_back(s);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    vertex_id_t u = queue[head];
    for (auto&& e : g[u]) {
      vertex_id_t v = nw::graph::target(e);
      if (dist[v] == nw::null_vertex<>) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

/// Serial union-find components (ground truth for all CC variants).
template <class Graph>
std::vector<vertex_id_t> reference_components(const Graph& g) {
  std::vector<vertex_id_t> parent(g.size());
  for (std::size_t v = 0; v < g.size(); ++v) parent[v] = static_cast<vertex_id_t>(v);
  auto find = [&](vertex_id_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x         = parent[x];
    }
    return x;
  };
  for (std::size_t u = 0; u < g.size(); ++u) {
    for (auto&& e : g[u]) {
      vertex_id_t ru = find(static_cast<vertex_id_t>(u));
      vertex_id_t rv = find(nw::graph::target(e));
      if (ru != rv) parent[std::max(ru, rv)] = std::min(ru, rv);
    }
  }
  std::vector<vertex_id_t> labels(g.size());
  for (std::size_t v = 0; v < g.size(); ++v) labels[v] = find(static_cast<vertex_id_t>(v));
  return labels;
}

}  // namespace nwtest
