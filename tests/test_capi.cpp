// tests/test_capi.cpp — the C binding surface, driven exactly like the
// paper's Listing 5 Python session.
#include <gtest/gtest.h>

#include <vector>

#include "capi/nwhy_capi.h"

namespace {

/// RAII wrappers so test failures don't leak handles.
struct hg_ptr {
  nwhy_hypergraph* p;
  ~hg_ptr() { nwhy_hypergraph_destroy(p); }
};
struct lg_ptr {
  nwhy_slinegraph* p;
  ~lg_ptr() { nwhy_slinegraph_destroy(p); }
};

}  // namespace

TEST(CApi, Listing5Session) {
  // col = [0,0,0,1,1,1], row = [0,1,2,0,1,2], weight = ones — two identical
  // hyperedges {v0, v1, v2}.
  std::vector<uint32_t> col{0, 0, 0, 1, 1, 1};
  std::vector<uint32_t> row{0, 1, 2, 0, 1, 2};
  std::vector<double>   weight{1, 1, 1, 1, 1, 1};

  hg_ptr hg{nwhy_hypergraph_create(col.data(), row.data(), weight.data(), col.size())};
  ASSERT_NE(hg.p, nullptr);
  EXPECT_EQ(nwhy_num_hyperedges(hg.p), 2u);
  EXPECT_EQ(nwhy_num_hypernodes(hg.p), 3u);
  EXPECT_EQ(nwhy_num_incidences(hg.p), 6u);

  // s2lg = hg.s_linegraph(s=2, edges=True)
  lg_ptr lg{nwhy_s_linegraph(hg.p, 2, 1)};
  ASSERT_NE(lg.p, nullptr);
  EXPECT_EQ(nwhy_slg_num_vertices(lg.p), 2u);
  EXPECT_EQ(nwhy_slg_num_edges(lg.p), 1u);  // |e0 ∩ e1| = 3 >= 2

  // tmp = s2lg.is_s_connected()
  EXPECT_EQ(nwhy_slg_is_s_connected(lg.p), 1);

  // sn = s2lg.s_neighbors(v=0)
  EXPECT_EQ(nwhy_slg_s_degree(lg.p, 0), 1u);
  std::vector<uint32_t> nbrs(nwhy_slg_s_degree(lg.p, 0));
  EXPECT_EQ(nwhy_slg_s_neighbors(lg.p, 0, nbrs.data()), 1u);
  EXPECT_EQ(nbrs[0], 1u);

  // scc = s2lg.s_connected_components()
  std::vector<uint32_t> labels(nwhy_slg_num_vertices(lg.p));
  nwhy_slg_s_connected_components(lg.p, labels.data());
  EXPECT_EQ(labels[0], labels[1]);

  // sdist = s2lg.s_distance(src=0, dest=1)
  EXPECT_EQ(nwhy_slg_s_distance(lg.p, 0, 1), 1u);

  // sp = s2lg.s_path(src=0, dest=1)
  std::vector<uint32_t> path(nwhy_slg_num_vertices(lg.p));
  EXPECT_EQ(nwhy_slg_s_path(lg.p, 0, 1, path.data()), 2u);
  EXPECT_EQ(path[0], 0u);
  EXPECT_EQ(path[1], 1u);

  // sbc / sc / shc / se
  std::vector<double> bc(2), cc(2), hc(2);
  std::vector<uint32_t> ecc(2);
  nwhy_slg_s_betweenness_centrality(lg.p, 1, bc.data());
  nwhy_slg_s_closeness_centrality(lg.p, cc.data());
  nwhy_slg_s_harmonic_closeness_centrality(lg.p, hc.data());
  nwhy_slg_s_eccentricity(lg.p, ecc.data());
  EXPECT_DOUBLE_EQ(bc[0], 0.0);  // 2-vertex graph: nothing between
  EXPECT_DOUBLE_EQ(cc[0], 1.0);
  EXPECT_DOUBLE_EQ(hc[0], 1.0);
  EXPECT_EQ(ecc[0], 1u);
}

TEST(CApi, BatchedAndSampledBetweennessWithStaleSentinels) {
  // Fig. 1: the s=1 line graph is the path e0-e1-e2-e3.
  std::vector<uint32_t> edges{0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 3, 3, 3};
  std::vector<uint32_t> nodes{0, 1, 2, 1, 2, 3, 4, 4, 5, 6, 6, 7, 8};
  hg_ptr hg{nwhy_hypergraph_create(edges.data(), nodes.data(), nullptr, edges.size())};
  lg_ptr lg{nwhy_s_linegraph(hg.p, 1, 1)};
  ASSERT_EQ(nwhy_slg_num_vertices(lg.p), 4u);

  std::vector<double> bc(4);
  nwhy_slg_s_betweenness_batched(lg.p, 0, bc.data());
  EXPECT_EQ(bc, (std::vector<double>{0.0, 2.0, 2.0, 0.0}));

  // Sampled with every vertex drawn is the exact raw scores scaled by
  // n / samples = 1 once the clamp kicks in; just pin determinism here.
  std::vector<double> s1(4), s2(4);
  nwhy_slg_s_betweenness_sampled(lg.p, 3, 7, s1.data());
  nwhy_slg_s_betweenness_sampled(lg.p, 3, 7, s2.data());
  EXPECT_EQ(s1, s2);

  // Mutating the source hypergraph stales the handle: sentinel fills.
  uint32_t members[] = {0, 8};
  ASSERT_EQ(nwhy_insert_edge(hg.p, 4, members, 2), 0);
  nwhy_slg_s_betweenness_batched(lg.p, 1, bc.data());
  EXPECT_EQ(bc, std::vector<double>(4, 0.0));
  nwhy_slg_s_betweenness_sampled(lg.p, 3, 7, s1.data());
  EXPECT_EQ(s1, std::vector<double>(4, 0.0));
}

TEST(CApi, MotifCounts) {
  // Fig. 1 census: 4 wedges, 2 closed (e0/e1 share {1, 2}), 1 butterfly.
  std::vector<uint32_t> edges{0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 3, 3, 3};
  std::vector<uint32_t> nodes{0, 1, 2, 1, 2, 3, 4, 4, 5, 6, 6, 7, 8};
  hg_ptr hg{nwhy_hypergraph_create(edges.data(), nodes.data(), nullptr, edges.size())};
  uint64_t wedges = 0, triads = 0, open = 0, butterflies = 0;
  ASSERT_EQ(nwhy_motif_counts(hg.p, &wedges, &triads, &open, &butterflies), 0);
  EXPECT_EQ(wedges, 4u);
  EXPECT_EQ(triads, 2u);
  EXPECT_EQ(open, 2u);
  EXPECT_EQ(butterflies, 1u);
  // NULL outputs are count-only holes; NULL hypergraph is rejected.
  EXPECT_EQ(nwhy_motif_counts(hg.p, nullptr, nullptr, nullptr, nullptr), 0);
  EXPECT_EQ(nwhy_motif_counts(nullptr, &wedges, nullptr, nullptr, nullptr), -1);
}

TEST(CApi, EdgeSizesAndNodeDegrees) {
  std::vector<uint32_t> edges{0, 0, 0, 1, 1};
  std::vector<uint32_t> nodes{0, 1, 2, 2, 3};
  hg_ptr hg{nwhy_hypergraph_create(edges.data(), nodes.data(), nullptr, edges.size())};
  std::vector<size_t> es(nwhy_num_hyperedges(hg.p)), nd(nwhy_num_hypernodes(hg.p));
  nwhy_edge_sizes(hg.p, es.data());
  nwhy_node_degrees(hg.p, nd.data());
  EXPECT_EQ(es, (std::vector<size_t>{3, 2}));
  EXPECT_EQ(nd, (std::vector<size_t>{1, 1, 2, 1}));
}

TEST(CApi, ToplexesTwoPhaseQuery) {
  // e0 ⊂ e1; only e1 is a toplex.
  std::vector<uint32_t> edges{0, 1, 1};
  std::vector<uint32_t> nodes{0, 0, 1};
  hg_ptr hg{nwhy_hypergraph_create(edges.data(), nodes.data(), nullptr, edges.size())};
  size_t count = nwhy_toplexes(hg.p, nullptr);
  ASSERT_EQ(count, 1u);
  std::vector<uint32_t> out(count);
  nwhy_toplexes(hg.p, out.data());
  EXPECT_EQ(out[0], 1u);
}

TEST(CApi, NullInputsRejected) {
  EXPECT_EQ(nwhy_hypergraph_create(nullptr, nullptr, nullptr, 5), nullptr);
  // Zero-length input is a valid empty hypergraph.
  hg_ptr hg{nwhy_hypergraph_create(nullptr, nullptr, nullptr, 0)};
  ASSERT_NE(hg.p, nullptr);
  EXPECT_EQ(nwhy_num_hyperedges(hg.p), 0u);
}

TEST(CApi, DualDirectionSCliqueGraph) {
  // edges=false: s-clique graph over hypernodes.
  std::vector<uint32_t> edges{0, 0, 0};
  std::vector<uint32_t> nodes{0, 1, 2};
  hg_ptr hg{nwhy_hypergraph_create(edges.data(), nodes.data(), nullptr, edges.size())};
  lg_ptr cg{nwhy_s_linegraph(hg.p, 1, 0)};
  EXPECT_EQ(nwhy_slg_num_vertices(cg.p), 3u);
  EXPECT_EQ(nwhy_slg_num_edges(cg.p), 3u);  // triangle among v0, v1, v2
}

TEST(CApi, OutOfRangeIdsMapToSentinelsNotExceptions) {
  // The C++ point queries now throw std::out_of_range; the C ABI must keep
  // its sentinel contract (0 / NWHY_NULL_ID) — no exception may cross the
  // language boundary.
  std::vector<uint32_t> edges{0, 0, 1, 1};
  std::vector<uint32_t> nodes{0, 1, 1, 2};
  hg_ptr hg{nwhy_hypergraph_create(edges.data(), nodes.data(), nullptr, edges.size())};
  lg_ptr lg{nwhy_s_linegraph(hg.p, 1, 1)};
  uint32_t bad = static_cast<uint32_t>(nwhy_slg_num_vertices(lg.p));
  EXPECT_EQ(nwhy_slg_s_degree(lg.p, bad), 0u);
  EXPECT_EQ(nwhy_slg_s_neighbors(lg.p, bad, nullptr), 0u);
  EXPECT_EQ(nwhy_slg_s_distance(lg.p, bad, 0), NWHY_NULL_ID);
  EXPECT_EQ(nwhy_slg_s_distance(lg.p, 0, bad), NWHY_NULL_ID);
  EXPECT_EQ(nwhy_slg_s_path(lg.p, bad, 0, nullptr), 0u);
  EXPECT_EQ(nwhy_slg_s_path(lg.p, 0, bad, nullptr), 0u);
  // Valid queries keep working on the same handle afterwards.
  EXPECT_EQ(nwhy_slg_s_distance(lg.p, 0, 1), 1u);
}

TEST(CApi, EmptyHypergraphLineGraphAnswersWithSentinels) {
  // A zero-size hypergraph is valid; every query on it (and on its s-line
  // graph) must answer with the documented sentinels, never crash or throw.
  hg_ptr hg{nwhy_hypergraph_create(nullptr, nullptr, nullptr, 0)};
  ASSERT_NE(hg.p, nullptr);
  EXPECT_EQ(nwhy_num_hyperedges(hg.p), 0u);
  EXPECT_EQ(nwhy_num_hypernodes(hg.p), 0u);
  EXPECT_EQ(nwhy_num_incidences(hg.p), 0u);
  EXPECT_EQ(nwhy_toplexes(hg.p, nullptr), 0u);

  lg_ptr lg{nwhy_s_linegraph(hg.p, 1, 1)};
  ASSERT_NE(lg.p, nullptr);
  EXPECT_EQ(nwhy_slg_num_vertices(lg.p), 0u);
  EXPECT_EQ(nwhy_slg_num_edges(lg.p), 0u);
  EXPECT_EQ(nwhy_slg_is_s_connected(lg.p), 0);  // no active entity
  // Every id is out of range on an empty line graph: sentinels, not traps.
  EXPECT_EQ(nwhy_slg_s_degree(lg.p, 0), 0u);
  EXPECT_EQ(nwhy_slg_s_neighbors(lg.p, 0, nullptr), 0u);
  EXPECT_EQ(nwhy_slg_s_distance(lg.p, 0, 0), NWHY_NULL_ID);
  EXPECT_EQ(nwhy_slg_s_path(lg.p, 0, 0, nullptr), 0u);
}

TEST(CApi, OversizedSLeavesEveryEntityInactive) {
  // s far above the largest overlap: the line graph is edgeless and every
  // hyperedge is inactive — components report NWHY_NULL_ID across the board
  // and the graph is not s-connected.
  std::vector<uint32_t> edges{0, 0, 1, 1};
  std::vector<uint32_t> nodes{0, 1, 1, 2};
  hg_ptr hg{nwhy_hypergraph_create(edges.data(), nodes.data(), nullptr, edges.size())};
  lg_ptr lg{nwhy_s_linegraph(hg.p, 99, 1)};
  ASSERT_NE(lg.p, nullptr);
  EXPECT_EQ(nwhy_slg_num_edges(lg.p), 0u);
  EXPECT_EQ(nwhy_slg_is_s_connected(lg.p), 0);
  std::vector<uint32_t> labels(nwhy_slg_num_vertices(lg.p), 0);
  nwhy_slg_s_connected_components(lg.p, labels.data());
  for (auto l : labels) EXPECT_EQ(l, NWHY_NULL_ID);
}

TEST(CApi, CountOnlyQueriesAcceptNullOutputBuffers) {
  // Two-phase query protocol: a NULL out pointer means "count only" — the
  // implementation must not write through it.
  std::vector<uint32_t> edges{0, 0, 0, 1, 2};
  std::vector<uint32_t> nodes{0, 1, 2, 1, 2};
  hg_ptr hg{nwhy_hypergraph_create(edges.data(), nodes.data(), nullptr, edges.size())};
  size_t count = nwhy_toplexes(hg.p, nullptr);
  EXPECT_GE(count, 1u);
  lg_ptr lg{nwhy_s_linegraph(hg.p, 1, 1)};
  EXPECT_EQ(nwhy_slg_s_neighbors(lg.p, 0, nullptr), nwhy_slg_s_degree(lg.p, 0));
  EXPECT_EQ(nwhy_slg_s_path(lg.p, 0, 1, nullptr), 2u);  // e0 — e1 share v1
}

TEST(CApi, RelabelByDegreeIsInvisibleToQueries) {
  // Skewed degrees so the relabel actually permutes: e0 tiny, e2 huge.
  std::vector<uint32_t> edges{0, 1, 1, 2, 2, 2, 2};
  std::vector<uint32_t> nodes{0, 0, 1, 0, 1, 2, 3};
  hg_ptr hg{nwhy_hypergraph_create(edges.data(), nodes.data(), nullptr, edges.size())};
  ASSERT_NE(hg.p, nullptr);
  EXPECT_EQ(nwhy_is_relabeled(hg.p), 0);

  std::vector<size_t> sizes_before(nwhy_num_hyperedges(hg.p));
  nwhy_edge_sizes(hg.p, sizes_before.data());
  size_t                toplex_count = nwhy_toplexes(hg.p, nullptr);
  std::vector<uint32_t> toplexes_before(toplex_count);
  nwhy_toplexes(hg.p, toplexes_before.data());

  ASSERT_EQ(nwhy_relabel_by_degree(hg.p), 0);
  EXPECT_EQ(nwhy_is_relabeled(hg.p), 1);

  // Every query must still speak original external ids.
  std::vector<size_t> sizes_after(nwhy_num_hyperedges(hg.p));
  nwhy_edge_sizes(hg.p, sizes_after.data());
  EXPECT_EQ(sizes_before, sizes_after);
  std::vector<uint32_t> toplexes_after(nwhy_toplexes(hg.p, nullptr));
  ASSERT_EQ(toplexes_after.size(), toplexes_before.size());
  nwhy_toplexes(hg.p, toplexes_after.data());
  EXPECT_EQ(toplexes_before, toplexes_after);
  std::vector<uint32_t> members(sizes_after[2]);
  ASSERT_EQ(nwhy_edge_members(hg.p, 2, members.data()), 4u);
  EXPECT_EQ(members, (std::vector<uint32_t>{0, 1, 2, 3}));

  // Mutation drops the relabel layer automatically...
  ASSERT_EQ(nwhy_insert_edge(hg.p, 3, nodes.data(), 2), 0);
  EXPECT_EQ(nwhy_is_relabeled(hg.p), 0);
  // ...and a pending delta blocks a fresh relabel until compaction.
  if (nwhy_delta_size(hg.p) > 0) {
    EXPECT_EQ(nwhy_relabel_by_degree(hg.p), -1);
  }
  ASSERT_EQ(nwhy_compact(hg.p), 0);
  EXPECT_EQ(nwhy_relabel_by_degree(hg.p), 0);
  EXPECT_EQ(nwhy_is_relabeled(hg.p), 1);
}

TEST(CApi, RelabelNullHandleRejected) {
  EXPECT_EQ(nwhy_relabel_by_degree(nullptr), -1);
  EXPECT_EQ(nwhy_is_relabeled(nullptr), 0);
}
