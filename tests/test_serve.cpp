// tests/test_serve.cpp — the nwhy_serve correctness suite.
//
// Four layers, mirroring the server's risk surface:
//
//   1. Protocol units: header/payload encode-decode round trips and the
//      wire_reader's rejection of short/trailing bytes.
//   2. Differential client stress (the headline): N client threads fire
//      seed-driven randomized query streams at an in-process server and
//      every reply is compared *byte-for-byte* against a reply synthesized
//      from direct library calls — swept over the 1/2/4/hw server-worker
//      ladder, and across a concurrent generation swap where each reply
//      must wholly match one generation or the other (digest payloads make
//      a torn answer detectable).  Seeds replay via NWHY_TEST_SEED.
//   3. Crafted-frame rejection: truncated frames, ~2^64 length claims, bad
//      magic/opcode/status, short and oversized payloads, out-of-range
//      entities — each answers a structured error or a clean disconnect,
//      never UB (this suite runs under asan/ubsan and tsan).
//   4. Scheduling: bounded-queue overflow answers busy promptly while
//      in-flight work completes; deadlines cancel queued and mid-flight
//      work; a timed-out worker is immediately reusable; duplicate
//      in-flight queries coalesce onto one execution.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "nwhy.hpp"
#include "prop_harness.hpp"

using namespace nw::hypergraph;
namespace sv = nw::hypergraph::serve;
using nw::vertex_id_t;
using nwtest::differential_seeds;

namespace {

/// Fresh short unix-socket path per server (sun_path is ~108 bytes, so
/// /tmp + pid + counter, never a deep build dir).
std::string fresh_socket_path() {
  static std::atomic<unsigned> counter{0};
  return "/tmp/nwhy_serve_t" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

sv::server::options unix_options(unsigned workers, std::size_t queue = 64) {
  sv::server::options opt;
  opt.unix_path        = fresh_socket_path();
  opt.threads          = workers;
  opt.queue_capacity   = queue;
  opt.enable_debug_ops = true;
  opt.allow_shutdown   = true;
  return opt;
}

/// One precomputed request/expected-reply pair of the differential corpus.
struct golden_query {
  sv::opcode                op;
  std::vector<std::uint8_t> request;
  std::vector<std::uint8_t> expected;
};

/// Synthesize the expected reply bytes for every query the stress clients
/// will fire, using ONLY direct library calls (NWHypergraph, s_linegraph,
/// the implicit kernels) — the independent oracle the server is diffed
/// against.  `epoch` must be the value publish() assigned, because stats
/// replies carry it.
std::vector<golden_query> build_corpus(const NWHypergraph& h, std::uint64_t epoch) {
  std::vector<golden_query> corpus;
  const std::size_t         ne = h.num_hyperedges();
  const std::size_t         nn = h.num_hypernodes();

  {
    sv::stats_reply r;
    r.num_hyperedges = ne;
    r.num_hypernodes = nn;
    r.num_incidences = h.num_incidences();
    r.epoch          = epoch;
    corpus.push_back({sv::opcode::stats, sv::encode(sv::stats_request{0}), sv::encode(r)});
  }

  // Sampled hyperedges: ends, middle, and a stride across the id space.
  std::vector<vertex_id_t> sample;
  for (std::size_t i = 0; i < ne; i += std::max<std::size_t>(1, ne / 7)) {
    sample.push_back(static_cast<vertex_id_t>(i));
  }
  if (ne > 0) sample.push_back(static_cast<vertex_id_t>(ne - 1));

  for (vertex_id_t src : sample) {
    auto          lib = h.bfs(src);
    sv::bfs_reply r;
    for (auto d : lib.dist_edge) {
      if (d != nw::null_vertex<>) {
        ++r.reached_edges;
        r.max_depth = std::max<std::uint64_t>(r.max_depth, d);
      }
    }
    for (auto d : lib.dist_node) {
      if (d != nw::null_vertex<>) ++r.reached_nodes;
    }
    r.edge_digest = sv::digest_u32(lib.dist_edge);
    r.node_digest = sv::digest_u32(lib.dist_node);
    corpus.push_back({sv::opcode::bfs, sv::encode(sv::bfs_request{0, src}), sv::encode(r)});
  }

  for (std::uint32_t s : {1u, 2u, 3u}) {
    auto lg = h.make_s_linegraph(s);
    for (vertex_id_t e : sample) {
      corpus.push_back({sv::opcode::neighbors,
                        sv::encode(sv::neighbors_request{0, s, e}),
                        sv::encode_neighbors_reply(lg.s_neighbors(e))});
      corpus.push_back(
          {sv::opcode::centrality,
           sv::encode(sv::centrality_request{
               0, s, static_cast<std::uint32_t>(sv::centrality_kind::closeness), e}),
           sv::encode_u64_reply(sv::double_bits(lg.s_closeness_centrality(e)))});
      corpus.push_back(
          {sv::opcode::centrality,
           sv::encode(sv::centrality_request{
               0, s, static_cast<std::uint32_t>(sv::centrality_kind::harmonic), e}),
           sv::encode_u64_reply(sv::double_bits(lg.s_harmonic_closeness_centrality(e)))});
      corpus.push_back(
          {sv::opcode::centrality,
           sv::encode(sv::centrality_request{
               0, s, static_cast<std::uint32_t>(sv::centrality_kind::eccentricity), e}),
           sv::encode_u64_reply(lg.s_eccentricity(e))});
    }

    for (vertex_id_t a : sample) {
      for (vertex_id_t b : sample) {
        auto d = s_distance_implicit(h.hyperedges(), h.hypernodes(), h.edge_sizes(), s, a, b);
        corpus.push_back(
            {sv::opcode::s_distance, sv::encode(sv::s_distance_request{0, s, a, b}),
             sv::encode_u64_reply(d ? static_cast<std::uint64_t>(*d) : sv::k_unreachable)});
      }
    }

    auto labels =
        s_connected_components_implicit(h.hyperedges(), h.hypernodes(), h.edge_sizes(), s);
    sv::s_components_reply r;
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (labels[i] == static_cast<vertex_id_t>(i)) ++r.num_components;
    }
    r.labels_digest = sv::digest_u32(labels);
    corpus.push_back(
        {sv::opcode::s_components, sv::encode(sv::s_components_request{0, s}), sv::encode(r)});
  }
  return corpus;
}

/// One stress client: replay `rounds` randomized picks from the corpus over
/// its own connection, asserting byte-exact replies.  Returns false (and
/// records a readable reason) instead of asserting so the gtest failure
/// fires on the main thread with the seed trace attached.
bool run_stress_client(const std::string& addr, const std::vector<golden_query>& corpus,
                       std::uint64_t seed, std::size_t rounds, std::string& why) {
  try {
    sv::client c;
    c.connect(addr);
    nw::xoshiro256ss rng(seed);
    for (std::size_t i = 0; i < rounds; ++i) {
      const auto& q = corpus[rng.bounded(corpus.size())];
      auto        r = c.call(q.op, q.request);
      if (!r) {
        why = "connection closed mid-stream";
        return false;
      }
      if (r->st != sv::status::ok) {
        why = std::string("unexpected status ") + sv::status_name(r->st);
        return false;
      }
      if (r->payload != q.expected) {
        why = std::string("reply bytes diverge from library oracle (op ") +
              sv::opcode_name(q.op) + ")";
        return false;
      }
    }
    return true;
  } catch (const std::exception& e) {
    why = e.what();
    return false;
  }
}

/// A hypergraph whose whole-graph queries take real time (hundreds of ms):
/// dense overlap structure so the implicit s-kernels do heavy hashmap work.
/// Used by the coalescing and deadline tests, which need work that outlasts
/// their control delays by a wide margin.
NWHypergraph dense_hypergraph(std::size_t ne, std::size_t nv, std::size_t edge_size) {
  biedgelist<> el(ne, nv);
  std::vector<vertex_id_t> members;
  for (std::size_t e = 0; e < ne; ++e) {
    members.clear();
    const std::size_t start = (e * 9973) % nv;
    for (std::size_t i = 0; i < edge_size; ++i) {
      members.push_back(static_cast<vertex_id_t>((start + i * 13) % nv));
    }
    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()), members.end());
    for (vertex_id_t v : members) el.push_back(static_cast<vertex_id_t>(e), v);
  }
  return NWHypergraph(std::move(el));
}

}  // namespace

// --- 1. protocol units -------------------------------------------------------

TEST(ServeProtocol, HeaderRoundTrip) {
  auto frame = sv::encode_frame(sv::opcode::neighbors, sv::status::ok, 0x1122334455667788ull,
                                sv::encode(sv::neighbors_request{7, 2, 42}), 250);
  ASSERT_EQ(frame.size(), sv::k_header_bytes + 16);
  std::uint8_t raw[sv::k_header_bytes];
  std::copy_n(frame.begin(), sv::k_header_bytes, raw);
  auto h = sv::decode_header(raw);
  EXPECT_EQ(h.magic, sv::k_magic);
  EXPECT_EQ(h.op, static_cast<std::uint16_t>(sv::opcode::neighbors));
  EXPECT_EQ(h.stat, 0);
  EXPECT_EQ(h.request_id, 0x1122334455667788ull);
  EXPECT_EQ(h.payload_len, 16u);
  EXPECT_EQ(h.deadline_ms, 250u);
  EXPECT_EQ(h.reserved, 0u);

  auto q = sv::decode_neighbors({frame.data() + sv::k_header_bytes, 16});
  EXPECT_EQ(q.graph, 7u);
  EXPECT_EQ(q.s, 2u);
  EXPECT_EQ(q.edge, 42u);
}

TEST(ServeProtocol, RejectsShortAndTrailingPayloads) {
  auto good = sv::encode(sv::s_distance_request{0, 1, 2, 3});
  EXPECT_NO_THROW((void)sv::decode_s_distance(good));
  auto short_p = good;
  short_p.pop_back();
  EXPECT_THROW((void)sv::decode_s_distance(short_p), sv::protocol_error);
  auto long_p = good;
  long_p.push_back(0);
  EXPECT_THROW((void)sv::decode_s_distance(long_p), sv::protocol_error);
  EXPECT_THROW((void)sv::decode_stats({}), sv::protocol_error);
}

TEST(ServeProtocol, NeighborsReplyRoundTripAndBoundsCheck) {
  std::vector<vertex_id_t> ids{3, 7, 11};
  auto                     bytes = sv::encode_neighbors_reply(ids);
  EXPECT_EQ(sv::decode_neighbors_reply(bytes), ids);
  // A count field lying about the element bytes must throw, not over-read.
  auto lying = bytes;
  lying[0] = 200;
  EXPECT_THROW((void)sv::decode_neighbors_reply(lying), sv::protocol_error);
}

TEST(ServeProtocol, DigestDetectsAnyElementChange) {
  std::vector<std::uint32_t> a{0, 1, nw::null_vertex<>, 5};
  auto                       b = a;
  b[2]                         = 4;
  EXPECT_NE(sv::digest_u32(a), sv::digest_u32(b));
  EXPECT_EQ(sv::digest_u32(a), sv::digest_u32(std::vector<std::uint32_t>{a}));
}

// --- registry ----------------------------------------------------------------

TEST(ServeRegistry, PublishPinRetire) {
  sv::generation_registry reg(2);
  EXPECT_EQ(reg.pin(0), nullptr);
  EXPECT_EQ(reg.pin(7), nullptr);  // out of range, not UB

  NWHypergraph h(gen::arbitrary_hypergraph(7));
  auto         e1 = reg.publish(0, sv::make_serve_graph(h));
  auto         e2 = reg.publish(1, sv::make_serve_graph(h));
  EXPECT_LT(e1, e2);  // epochs are globally monotonic

  auto pin = reg.pin(0);
  ASSERT_NE(pin, nullptr);
  EXPECT_EQ(pin->epoch, e1);

  // Replace slot 0 while pinned: old generation stays alive via the pin...
  auto e3 = reg.publish(0, sv::make_serve_graph(h));
  EXPECT_GT(e3, e2);
  EXPECT_EQ(reg.retired_live(0), 1u);
  ASSERT_NE(reg.pin(0), nullptr);
  EXPECT_EQ(reg.pin(0)->epoch, e3);
  EXPECT_EQ(pin->epoch, e1);  // the pinned view never mutates

  // ...and is reclaimed when the last pin drops.
  pin.reset();
  EXPECT_EQ(reg.retired_live(0), 0u);
}

// --- 2. differential client stress ------------------------------------------

TEST(ServeDifferential, StressAcrossWorkerLadder) {
  nwtest::concurrency_guard guard;
  for (auto seed : differential_seeds(0x5e7f0000ull)) {
    NWHY_SEED_TRACE(seed);
    NWHypergraph h(gen::arbitrary_hypergraph(seed));
    if (h.num_hyperedges() == 0) continue;

    for (unsigned workers : nwtest::differential_thread_counts()) {
      auto       opt = unix_options(workers);
      sv::server srv(opt);
      auto       epoch  = srv.publish(0, sv::make_serve_graph(h));
      auto       corpus = build_corpus(h, epoch);

      constexpr std::size_t    k_clients = 4;
      constexpr std::size_t    k_rounds  = 40;
      std::vector<std::string> why(k_clients);
      std::vector<int>         ok(k_clients, 0);
      std::vector<std::thread> clients;
      for (std::size_t i = 0; i < k_clients; ++i) {
        clients.emplace_back([&, i] {
          ok[i] = run_stress_client(srv.address(), corpus, seed * 131 + i, k_rounds, why[i]);
        });
      }
      for (auto& t : clients) t.join();
      for (std::size_t i = 0; i < k_clients; ++i) {
        EXPECT_TRUE(ok[i]) << "workers=" << workers << " client=" << i << ": " << why[i];
      }
      srv.stop();
    }
  }
}

TEST(ServeDifferential, StressOverTcp) {
  // One rung over TCP loopback so the tcp listener/framing path is covered
  // by the same byte-exact comparison (the ladder above runs unix sockets).
  nwtest::concurrency_guard guard;
  const std::uint64_t       seed = differential_seeds(0x7c900000ull)[0];
  NWHY_SEED_TRACE(seed);
  NWHypergraph h(gen::arbitrary_hypergraph(seed));
  ASSERT_GT(h.num_hyperedges(), 0u);

  sv::server::options opt;
  opt.use_tcp        = true;
  opt.tcp_port       = 0;  // ephemeral
  opt.threads        = 4;
  opt.queue_capacity = 64;
  sv::server srv(opt);
  ASSERT_NE(srv.bound_port(), 0);
  auto epoch  = srv.publish(0, sv::make_serve_graph(h));
  auto corpus = build_corpus(h, epoch);

  std::string why;
  EXPECT_TRUE(run_stress_client(srv.address(), corpus, seed, 60, why)) << why;
}

TEST(ServeDifferential, GenerationSwapYieldsNoTornReplies) {
  nwtest::concurrency_guard guard;
  const auto                seeds = differential_seeds(0x9a100000ull);
  const std::uint64_t       seed  = seeds[0];
  NWHY_SEED_TRACE(seed);

  // Two distinct contents for the same slot.  Replies carry whole-array
  // digests, so an answer computed partly against A and partly against B
  // cannot match either expected byte string.
  NWHypergraph a(gen::arbitrary_hypergraph(seed));
  NWHypergraph b(gen::arbitrary_hypergraph(seed + 7919));
  ASSERT_GT(a.num_hyperedges(), 0u);
  ASSERT_GT(b.num_hyperedges(), 0u);

  auto       opt = unix_options(std::max(2u, std::thread::hardware_concurrency()));
  sv::server srv(opt);
  auto       epoch_a = srv.publish(0, sv::make_serve_graph(a));

  auto corpus_a = build_corpus(a, epoch_a);
  // Predict B's epoch: the registry's counter is server-wide monotonic and
  // nothing else publishes, so the swap below gets epoch_a + 1.
  auto corpus_b = build_corpus(b, epoch_a + 1);

  // Keep only query payloads present in BOTH corpora (same request bytes, so
  // valid against either generation), pairing A's and B's expected replies.
  struct swap_query {
    sv::opcode                op;
    std::vector<std::uint8_t> request, expect_a, expect_b;
  };
  std::vector<swap_query> queries;
  for (const auto& qa : corpus_a) {
    for (const auto& qb : corpus_b) {
      if (qa.op == qb.op && qa.request == qb.request) {
        queries.push_back({qa.op, qa.request, qa.expected, qb.expected});
      }
    }
  }
  ASSERT_FALSE(queries.empty());

  std::atomic<bool>        swapped{false};
  std::atomic<int>         failures{0};
  std::string              first_why;
  std::mutex               why_mu;
  constexpr std::size_t    k_clients = 4;
  std::vector<std::thread> clients;
  for (std::size_t ci = 0; ci < k_clients; ++ci) {
    clients.emplace_back([&, ci] {
      try {
        sv::client c;
        c.connect(srv.address());
        nw::xoshiro256ss rng(seed * 977 + ci);
        for (std::size_t i = 0; i < 120; ++i) {
          const auto& q = queries[rng.bounded(queries.size())];
          // Sample the flag BEFORE sending: if the swap completed before
          // the request went out, the server must already answer from B.
          const bool must_be_b = swapped.load(std::memory_order_acquire);
          auto       r         = c.call(q.op, q.request);
          if (!r || r->st != sv::status::ok) {
            ++failures;
            std::lock_guard lk(why_mu);
            if (first_why.empty()) {
              first_why = r ? std::string("status ") + sv::status_name(r->st)
                            : "disconnected";
            }
            return;
          }
          const bool is_a = r->payload == q.expect_a;
          const bool is_b = r->payload == q.expect_b;
          if (!(is_b || (is_a && !must_be_b))) {
            ++failures;
            std::lock_guard lk(why_mu);
            if (first_why.empty()) {
              first_why = std::string("torn or stale reply for op ") + sv::opcode_name(q.op) +
                          (must_be_b ? " (after swap)" : " (matches neither generation)");
            }
            return;
          }
        }
      } catch (const std::exception& e) {
        ++failures;
        std::lock_guard lk(why_mu);
        if (first_why.empty()) first_why = e.what();
      }
    });
  }

  // Let clients run against A, then swap mid-stream.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  auto epoch_b = srv.publish(0, sv::make_serve_graph(b));
  EXPECT_EQ(epoch_b, epoch_a + 1);
  swapped.store(true, std::memory_order_release);

  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0) << first_why;

  // Quiesced: no request pins A anymore, so the retired generation is gone.
  srv.stop();
  EXPECT_EQ(srv.registry().retired_live(0), 0u);
}

// --- 3. crafted-frame rejection ---------------------------------------------

namespace {

/// Fixture: one small served graph every fuzz case can poke at.
class ServeFuzz : public ::testing::Test {
protected:
  void SetUp() override {
    h_ = std::make_unique<NWHypergraph>(gen::arbitrary_hypergraph(11));
    ASSERT_GT(h_->num_hyperedges(), 0u);
    srv_ = std::make_unique<sv::server>(unix_options(2));
    srv_->publish(0, sv::make_serve_graph(*h_));
  }
  void TearDown() override {
    if (srv_) srv_->stop();
  }

  sv::client connect() {
    sv::client c;
    c.connect(srv_->address(), /*recv_timeout_s=*/30);
    return c;
  }

  std::unique_ptr<NWHypergraph> h_;
  std::unique_ptr<sv::server>   srv_;
};

}  // namespace

TEST_F(ServeFuzz, TruncatedHeaderIsCleanDisconnect) {
  auto c = connect();
  std::vector<std::uint8_t> half(10, 0xAB);
  c.send_raw(half);
  c.close();  // server sees EOF mid-header and must just drop the conn
  // Server is still alive and serving:
  auto c2 = connect();
  auto r  = c2.ping();
  ASSERT_TRUE(r);
  EXPECT_EQ(r->st, sv::status::ok);
}

TEST_F(ServeFuzz, BadMagicClosesWithoutReply) {
  auto c     = connect();
  auto frame = sv::encode_frame(sv::opcode::ping, sv::status::ok, 1, {});
  frame[0] ^= 0xFF;
  c.send_raw(frame);
  EXPECT_EQ(c.recv_reply(), std::nullopt);  // clean EOF, no bytes
}

TEST_F(ServeFuzz, HugePayloadLengthClaimIsRejectedNotAllocated) {
  auto c = connect();
  sv::frame_header h;
  h.op          = static_cast<std::uint16_t>(sv::opcode::stats);
  h.request_id  = 99;
  h.payload_len = ~std::uint64_t{0};  // ~2^64 claim
  std::vector<std::uint8_t> raw;
  sv::encode_header(h, raw);
  c.send_raw(raw);
  auto r = c.recv_reply();
  ASSERT_TRUE(r);
  EXPECT_EQ(r->st, sv::status::bad_frame);
  EXPECT_EQ(r->request_id, 99u);
  EXPECT_EQ(c.recv_reply(), std::nullopt);  // stream desynced: server closed
}

TEST_F(ServeFuzz, NonzeroStatusOrReservedIsBadFrame) {
  for (int which = 0; which < 2; ++which) {
    auto c = connect();
    sv::frame_header h;
    h.op = static_cast<std::uint16_t>(sv::opcode::ping);
    if (which == 0) {
      h.stat = 3;
    } else {
      h.reserved = 1;
    }
    std::vector<std::uint8_t> raw;
    sv::encode_header(h, raw);
    c.send_raw(raw);
    auto r = c.recv_reply();
    ASSERT_TRUE(r);
    EXPECT_EQ(r->st, sv::status::bad_frame);
  }
}

TEST_F(ServeFuzz, UnknownOpcodeGetsStructuredReplyAndConnectionSurvives) {
  auto c = connect();
  std::vector<std::uint8_t> payload{1, 2, 3, 4};
  auto frame = sv::encode_frame(static_cast<sv::opcode>(0x42), sv::status::ok, 5, payload);
  c.send_raw(frame);
  auto r = c.recv_reply();
  ASSERT_TRUE(r);
  EXPECT_EQ(r->st, sv::status::bad_opcode);
  EXPECT_EQ(r->request_id, 5u);
  // Framing was sound, so the connection keeps working:
  auto p = c.ping();
  ASSERT_TRUE(p);
  EXPECT_EQ(p->st, sv::status::ok);
}

TEST_F(ServeFuzz, WrongPayloadShapeForKnownOpcodeIsBadFrameAndSurvives) {
  auto c = connect();
  // neighbors wants 16 bytes; send 2, then 17.
  for (std::size_t n : {std::size_t{2}, std::size_t{17}}) {
    std::vector<std::uint8_t> payload(n, 0);
    auto r = c.call(sv::opcode::neighbors, payload);
    ASSERT_TRUE(r) << "payload size " << n;
    EXPECT_EQ(r->st, sv::status::bad_frame) << "payload size " << n;
  }
  auto p = c.ping();
  ASSERT_TRUE(p);
  EXPECT_EQ(p->st, sv::status::ok);
}

TEST_F(ServeFuzz, TruncatedPayloadIsCleanDisconnect) {
  auto c     = connect();
  auto frame = sv::encode_frame(sv::opcode::bfs, sv::status::ok, 6,
                                sv::encode(sv::bfs_request{0, 0}));
  frame.resize(frame.size() - 4);  // header promises 12 bytes, deliver 8
  c.send_raw(frame);
  c.close();
  auto c2 = connect();
  auto r  = c2.stats(0);
  ASSERT_TRUE(r);
  EXPECT_EQ(r->st, sv::status::ok);
}

TEST_F(ServeFuzz, DomainErrorsAreStructuredStatuses) {
  auto c = connect();

  auto s0 = c.neighbors(0, 0, 0);
  ASSERT_TRUE(s0);
  EXPECT_EQ(s0->st, sv::status::bad_s);

  auto sbig = c.neighbors(0, sv::k_max_s + 1, 0);
  ASSERT_TRUE(sbig);
  EXPECT_EQ(sbig->st, sv::status::bad_s);

  auto oor = c.bfs(0, h_->num_hyperedges());
  ASSERT_TRUE(oor);
  EXPECT_EQ(oor->st, sv::status::bad_entity);

  auto oor2 = c.s_distance(0, 1, 0, std::uint64_t{1} << 40);
  ASSERT_TRUE(oor2);
  EXPECT_EQ(oor2->st, sv::status::bad_entity);

  auto nog = c.stats(3);  // slot exists, nothing published
  ASSERT_TRUE(nog);
  EXPECT_EQ(nog->st, sv::status::no_graph);

  auto noslot = c.stats(4000);  // slot out of range entirely
  ASSERT_TRUE(noslot);
  EXPECT_EQ(noslot->st, sv::status::no_graph);

  auto badkind = c.centrality(0, 1, static_cast<sv::centrality_kind>(9), 0);
  ASSERT_TRUE(badkind);
  EXPECT_EQ(badkind->st, sv::status::bad_frame);

  auto pingpay = c.call(sv::opcode::ping, std::vector<std::uint8_t>{1});
  ASSERT_TRUE(pingpay);
  EXPECT_EQ(pingpay->st, sv::status::bad_frame);

  // Debug/shutdown ops are enabled in this fixture; on a default server
  // they are rejected as unknown (covered in ServeScheduling below).  The
  // connection survived this whole gauntlet:
  auto fine = c.stats(0);
  ASSERT_TRUE(fine);
  EXPECT_EQ(fine->st, sv::status::ok);
}

TEST(ServeFuzzDisabled, DebugOpsRejectedWhenNotEnabled) {
  NWHypergraph h(gen::arbitrary_hypergraph(11));
  auto         opt = unix_options(1);
  opt.enable_debug_ops = false;
  opt.allow_shutdown   = false;
  sv::server srv(opt);
  srv.publish(0, sv::make_serve_graph(h));
  sv::client c;
  c.connect(srv.address());
  auto sd = c.sleep_debug(1);
  ASSERT_TRUE(sd);
  EXPECT_EQ(sd->st, sv::status::bad_opcode);
  auto sh = c.shutdown();
  ASSERT_TRUE(sh);
  EXPECT_EQ(sh->st, sv::status::bad_opcode);
}

// --- 4. deadlines, admission queue, coalescing -------------------------------

TEST(ServeScheduling, QueueOverflowAnswersBusyPromptly) {
  NWHypergraph h(gen::arbitrary_hypergraph(23));
  auto         opt = unix_options(/*workers=*/1, /*queue=*/2);
  sv::server   srv(opt);
  srv.publish(0, sv::make_serve_graph(h));

  // Occupy the single worker (sleep ~1.5 s) and fill the 2-slot queue.
  // Raw sends so nothing blocks on replies.
  std::vector<sv::client> fillers(3);
  for (std::size_t i = 0; i < fillers.size(); ++i) {
    fillers[i].connect(srv.address());
    fillers[i].send_raw(sv::encode_frame(sv::opcode::sleep_debug, sv::status::ok, 100 + i,
                                         sv::encode_u64_reply(1500)));
    if (i == 0) {
      // Let the worker dequeue the first sleep before the queue fills, so
      // fillers 2 and 3 land in the queue instead of racing it for a slot.
      std::this_thread::sleep_for(std::chrono::milliseconds(150));
    }
  }
  // Give the reader threads a moment to enqueue the remaining two.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  sv::client probe;
  probe.connect(srv.address());
  const auto t0 = std::chrono::steady_clock::now();
  auto       r  = probe.stats(0);
  const auto ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  ASSERT_TRUE(r);
  EXPECT_EQ(r->st, sv::status::busy);
  // Overflow must be answered immediately, not after the queue drains.
  EXPECT_LT(ms, 1000.0) << "busy reply took " << ms << " ms";

  // In-flight and queued work still completes.
  for (auto& f : fillers) {
    auto fr = f.recv_reply();
    ASSERT_TRUE(fr);
    EXPECT_EQ(fr->st, sv::status::ok);
  }
  auto m = srv.metrics();
  EXPECT_GE(m.rejected_busy, 1u);
}

TEST(ServeScheduling, DeadlineCancelsSlowQueryAndWorkerIsReusable) {
  NWHypergraph h(gen::arbitrary_hypergraph(23));
  auto         opt = unix_options(/*workers=*/1, /*queue=*/8);
  sv::server   srv(opt);
  srv.publish(0, sv::make_serve_graph(h));

  sv::client c;
  c.connect(srv.address());
  const auto t0 = std::chrono::steady_clock::now();
  auto       r  = c.sleep_debug(60'000, /*deadline_ms=*/100);
  const auto ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  ASSERT_TRUE(r);
  EXPECT_EQ(r->st, sv::status::deadline_exceeded);
  EXPECT_LT(ms, 30'000.0) << "deadline reply took " << ms << " ms (not prompt)";

  // The worker that timed out is immediately reusable:
  auto after = c.stats(0);
  ASSERT_TRUE(after);
  EXPECT_EQ(after->st, sv::status::ok);
  EXPECT_GE(srv.metrics().deadline_exceeded, 1u);
}

TEST(ServeScheduling, DeadlineExpiringInQueueSkipsExecution) {
  NWHypergraph h(gen::arbitrary_hypergraph(23));
  auto         opt = unix_options(/*workers=*/1, /*queue=*/8);
  sv::server   srv(opt);
  srv.publish(0, sv::make_serve_graph(h));

  // Occupy the worker for 800 ms, then queue a request that only has 50 ms
  // to live — it must come back deadline_exceeded without ever running.
  sv::client blocker;
  blocker.connect(srv.address());
  blocker.send_raw(sv::encode_frame(sv::opcode::sleep_debug, sv::status::ok, 1,
                                    sv::encode_u64_reply(800)));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  sv::client c;
  c.connect(srv.address());
  auto r = c.stats(0, /*deadline_ms=*/50);
  ASSERT_TRUE(r);
  EXPECT_EQ(r->st, sv::status::deadline_exceeded);

  auto br = blocker.recv_reply();
  ASSERT_TRUE(br);
  EXPECT_EQ(br->st, sv::status::ok);
}

TEST(ServeScheduling, MidQueryDeadlineCancelsAtFrontierBoundary) {
  // A dense graph where one s_components call runs for hundreds of ms; a
  // 50 ms deadline must cancel it mid-traversal (frontier-boundary poll),
  // not after completion.
  NWHypergraph h = dense_hypergraph(10000, 4001, 90);
  auto         opt = unix_options(/*workers=*/1, /*queue=*/8);
  sv::server   srv(opt);
  srv.publish(0, sv::make_serve_graph(h));

  sv::client c;
  c.connect(srv.address());
  // Calibrate: the full query must take meaningfully longer than the
  // deadline for the test to mean anything.
  const auto t0 = std::chrono::steady_clock::now();
  auto       full = c.s_components(0, 1);
  const auto full_ms = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  ASSERT_TRUE(full);
  EXPECT_EQ(full->st, sv::status::ok);
  if (full_ms < 150.0) {
    GTEST_SKIP() << "machine too fast to distinguish cancellation (" << full_ms << " ms)";
  }

  const auto t1 = std::chrono::steady_clock::now();
  auto       r  = c.s_components(0, 1, /*deadline_ms=*/50);
  const auto ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t1)
                      .count();
  ASSERT_TRUE(r);
  EXPECT_EQ(r->st, sv::status::deadline_exceeded);
  EXPECT_LT(ms, full_ms * 0.8) << "cancellation not faster than completion";
}

TEST(ServeScheduling, DuplicateInFlightQueriesCoalesce) {
  // Leader starts a slow whole-graph query; duplicates submitted while it
  // runs must join it (one execution, identical bytes) rather than queue
  // their own.  Driven through the dispatcher directly for determinism.
  NWHypergraph h = dense_hypergraph(4000, 3001, 60);
  auto         graph = std::make_shared<const sv::serve_graph>([&] {
    auto g  = sv::make_serve_graph(h);
    g.epoch = 1;
    return g;
  }());

  sv::dispatcher d({/*threads=*/4, /*queue=*/64});
  auto           payload = sv::encode(sv::s_components_request{0, 1});

  struct slot {
    std::mutex              mu;
    std::condition_variable cv;
    bool                    done = false;
    sv::reply_data          reply;
  };
  auto results = std::vector<std::shared_ptr<slot>>();
  auto submit  = [&] {
    auto s = std::make_shared<slot>();
    results.push_back(s);
    ASSERT_TRUE(d.submit(graph, sv::opcode::s_components, payload, sv::deadline_token{},
                         [s](sv::reply_data r) {
                           std::lock_guard lk(s->mu);
                           s->reply = std::move(r);
                           s->done  = true;
                           s->cv.notify_all();
                         }));
  };

  submit();  // leader
  // The leader registers its in-flight key before executing; by the time a
  // dense s_components is 30 ms in, duplicates must find the key.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  submit();
  submit();
  submit();

  for (auto& s : results) {
    std::unique_lock lk(s->mu);
    ASSERT_TRUE(s->cv.wait_for(lk, std::chrono::seconds(120), [&] { return s->done; }));
    EXPECT_EQ(s->reply.st, sv::status::ok);
    EXPECT_EQ(s->reply.payload, results.front()->reply.payload);
  }
  auto m = d.snapshot();
  EXPECT_EQ(m.completed, 4u);
  if (m.coalesced == 0) {
    // Leader outran the duplicates (very fast machine): the equality checks
    // above still hold, but the coalescing assertion is vacuous.
    GTEST_SKIP() << "leader finished before duplicates were submitted";
  }
  EXPECT_GE(m.coalesced, 1u);
  d.stop();
}

TEST(ServeScheduling, MetricsAccumulate) {
  NWHypergraph h(gen::arbitrary_hypergraph(5));
  sv::server   srv(unix_options(2));
  srv.publish(0, sv::make_serve_graph(h));
  sv::client c;
  c.connect(srv.address());
  for (int i = 0; i < 10; ++i) {
    auto r = c.stats(0);
    ASSERT_TRUE(r);
    EXPECT_EQ(r->st, sv::status::ok);
  }
  auto m = srv.metrics();
  EXPECT_GE(m.completed, 10u);
  EXPECT_GT(m.qps, 0.0);
  EXPECT_GE(m.p99_us, m.p50_us);
  EXPECT_EQ(m.rejected_busy, 0u);
}
