// tests/test_nwhypergraph.cpp — integration tests for the NWHypergraph
// facade: representation caching, cross-representation consistency, and
// end-to-end workflows on generated data.
#include <gtest/gtest.h>

#include "nwhy/nwhypergraph.hpp"
#include "nwhy/gen/generators.hpp"
#include "test_util.hpp"

using namespace nw::hypergraph;
using nw::vertex_id_t;
using nwtest::same_partition;

TEST(NWHypergraph, ConstructFromArrays) {
  std::vector<vertex_id_t> edges{0, 0, 1, 1, 1};
  std::vector<vertex_id_t> nodes{0, 1, 1, 2, 3};
  NWHypergraph             hg(edges, nodes);
  EXPECT_EQ(hg.num_hyperedges(), 2u);
  EXPECT_EQ(hg.num_hypernodes(), 4u);
  EXPECT_EQ(hg.num_incidences(), 5u);
  EXPECT_EQ(hg.edge_sizes(), (std::vector<std::size_t>{2, 3}));
  EXPECT_EQ(hg.node_degrees(), (std::vector<std::size_t>{1, 2, 1, 1}));
}

TEST(NWHypergraph, DuplicateIncidencesCollapse) {
  std::vector<vertex_id_t> edges{0, 0, 0};
  std::vector<vertex_id_t> nodes{1, 1, 1};
  NWHypergraph             hg(edges, nodes);
  EXPECT_EQ(hg.num_incidences(), 1u);
}

TEST(NWHypergraph, AdjoinIsCachedAndConsistent) {
  NWHypergraph hg(nwtest::figure1_hypergraph());
  const auto&  a1 = hg.adjoin();
  const auto&  a2 = hg.adjoin();
  EXPECT_EQ(&a1, &a2);  // cached, not rebuilt
  EXPECT_EQ(a1.nrealedges, hg.num_hyperedges());
  EXPECT_EQ(a1.nrealnodes, hg.num_hypernodes());
}

TEST(NWHypergraph, BothCcEnginesAgreeOnFacade) {
  NWHypergraph hg(gen::planted_community_hypergraph(60, 150, 20, 1.5, 0.2, 5));
  auto         exact  = hg.connected_components();
  auto         adjoin = hg.connected_components_adjoin();
  std::vector<vertex_id_t> a(exact.labels_edge);
  a.insert(a.end(), exact.labels_node.begin(), exact.labels_node.end());
  std::vector<vertex_id_t> b(adjoin.labels_edge);
  b.insert(b.end(), adjoin.labels_node.begin(), adjoin.labels_node.end());
  EXPECT_TRUE(same_partition(a, b));
}

TEST(NWHypergraph, BothBfsEnginesReachSameSet) {
  NWHypergraph hg(gen::uniform_random_hypergraph(80, 200, 3, 6));
  auto         exact  = hg.bfs(0);
  auto         adjoin = hg.bfs_adjoin(0);
  for (std::size_t e = 0; e < exact.parents_edge.size(); ++e) {
    EXPECT_EQ(exact.parents_edge[e] == nw::null_vertex<>,
              adjoin.parents_edge[e] == nw::null_vertex<>);
  }
}

TEST(NWHypergraph, CliqueExpansionMatchesSCliqueCounts) {
  NWHypergraph hg(nwtest::figure1_hypergraph());
  auto         ce = hg.clique_expansion_graph();
  auto         cg = hg.make_s_linegraph(1, /*edges=*/false);
  EXPECT_EQ(ce.size(), hg.num_hypernodes());
  EXPECT_EQ(ce.num_edges() / 2, cg.num_edges());
}

TEST(NWHypergraph, SLineGraphCardinalityMatchesHyperedges) {
  NWHypergraph hg(gen::powerlaw_hypergraph(40, 30, 10, 1.5, 1.0, 8));
  for (std::size_t s : {1, 2, 3}) {
    auto lg = hg.make_s_linegraph(s);
    EXPECT_EQ(lg.num_vertices(), hg.num_hyperedges());
    EXPECT_EQ(lg.s(), s);
  }
}

TEST(NWHypergraph, EndToEndWorkflow) {
  // The README workflow: generate, project, analyze.
  NWHypergraph hg(gen::planted_community_hypergraph(50, 100, 15, 1.5, 0.3, 9));
  auto         lg     = hg.make_s_linegraph(2);
  auto         labels = lg.s_connected_components();
  auto         bc     = lg.s_betweenness_centrality();
  ASSERT_EQ(labels.size(), hg.num_hyperedges());
  ASSERT_EQ(bc.size(), hg.num_hyperedges());
  auto t = hg.toplexes();
  EXPECT_FALSE(t.empty());
  for (auto e : t) EXPECT_LT(e, hg.num_hyperedges());
}
