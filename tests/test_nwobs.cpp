// tests/test_nwobs.cpp — the observability layer (PR tentpole): counter
// merge semantics under every partitioner, gauges, phase timers, the JSON
// profile schema ({counters, timers, env, threads}) and the pinned counter
// names each instrumented algorithm family emits.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "nwhy.hpp"
#include "test_util.hpp"

using namespace nw::hypergraph;
using nw::vertex_id_t;
using nw::obs::registry;

namespace {

NWHypergraph figure1() { return NWHypergraph(nwtest::figure1_hypergraph()); }

/// Minimal JSON reader for the profile schema: objects, strings, numbers,
/// null.  Deliberately tiny — it only has to accept what profile_json()
/// emits, and reject anything structurally broken.
class mini_json {
public:
  struct value {
    enum class kind { object, string, number, null } k = kind::null;
    std::map<std::string, value> members;  // kind::object
    std::string                  str;      // kind::string
    double                       num = 0;  // kind::number
  };

  static bool parse(const std::string& text, value& out) {
    mini_json p(text);
    if (!p.parse_value(out)) return false;
    p.skip_ws();
    return p.pos_ == text.size();  // no trailing garbage
  }

private:
  explicit mini_json(const std::string& text) : text_(text) {}

  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  bool parse_value(value& out) {
    skip_ws();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    if (c == '{') return parse_object(out);
    if (c == '"') {
      out.k = value::kind::string;
      return parse_string(out.str);
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      out.k = value::kind::null;
      pos_ += 4;
      return true;
    }
    return parse_number(out);
  }

  bool parse_object(value& out) {
    out.k = value::kind::object;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      value v;
      if (!parse_value(v)) return false;
      out.members.emplace(std::move(key), std::move(v));
      skip_ws();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool parse_string(std::string& out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    out.clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        if (pos_ + 1 >= text_.size()) return false;
        out += text_[pos_ + 1];  // good enough for schema checks
        pos_ += 2;
      } else {
        out += text_[pos_++];
      }
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool parse_number(value& out) {
    std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '-' ||
            text_[pos_] == '+' || text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out.k   = value::kind::number;
    out.num = std::stod(text_.substr(start, pos_ - start));
    return true;
  }

  const std::string& text_;
  std::size_t        pos_ = 0;
};

/// Fresh registry state for every test.
class NwobsTest : public ::testing::Test {
protected:
  void SetUp() override { registry::get().reset(); }
};

}  // namespace

// --- counters --------------------------------------------------------------

TEST_F(NwobsTest, CounterMergesBlockedPartitioner) {
  auto&             c = registry::get().get_counter("test.blocked");
  const std::size_t n = 100000;
  nw::par::parallel_for(0, n, [&](unsigned tid, std::size_t) { c.add(tid, 1); },
                        nw::par::blocked{});
  EXPECT_EQ(c.value(), n);
}

TEST_F(NwobsTest, CounterMergesStaticBlockedPartitioner) {
  auto&             c = registry::get().get_counter("test.static_blocked");
  const std::size_t n = 100000;
  nw::par::parallel_for(0, n, [&](unsigned tid, std::size_t) { c.add(tid, 1); },
                        nw::par::static_blocked{});
  EXPECT_EQ(c.value(), n);
}

TEST_F(NwobsTest, CounterMergesCyclicPartitioner) {
  auto&             c = registry::get().get_counter("test.cyclic");
  const std::size_t n = 100000;
  nw::par::parallel_for(0, n, [&](unsigned tid, std::size_t) { c.add(tid, 1); },
                        nw::par::cyclic{});
  EXPECT_EQ(c.value(), n);
}

TEST_F(NwobsTest, CounterWeightedAddsAndMacro) {
  auto& c = registry::get().get_counter("test.weighted");
  c.add(0, 5);
  c.add(1, 7);
  EXPECT_EQ(c.value(), 12u);
  NWOBS_COUNT("test.weighted_macro", 0, 3);
  NWOBS_COUNT("test.weighted_macro", 0, 4);
  EXPECT_EQ(registry::get().get_counter("test.weighted_macro").value(), 7u);
}

TEST_F(NwobsTest, CounterOverflowSlotIsStillCounted) {
  // Worker ids beyond slot_capacity (possible only if a pool ever exceeded
  // 128 threads) fall back to the relaxed-atomic overflow slot.
  auto& c = registry::get().get_counter("test.overflow");
  c.add(nw::obs::counter::slot_capacity + 5, 9);
  c.add(0, 1);
  EXPECT_EQ(c.value(), 10u);
}

TEST_F(NwobsTest, ResetZeroesInPlaceSoCachedReferencesStayValid) {
  auto& c = registry::get().get_counter("test.reset");
  c.add(0, 41);
  registry::get().reset();
  EXPECT_EQ(c.value(), 0u);
  c.add(0, 1);  // the same reference keeps working after reset
  EXPECT_EQ(c.value(), 1u);
  EXPECT_EQ(registry::get().counters_snapshot().at("test.reset"), 1u);
}

// --- gauges ----------------------------------------------------------------

TEST_F(NwobsTest, GaugeSetAndObserveMax) {
  auto& g = registry::get().get_gauge("test.gauge");
  g.set(17);
  EXPECT_EQ(g.value(), 17u);
  g.observe_max(5);  // lower: no change
  EXPECT_EQ(g.value(), 17u);
  g.observe_max(99);
  EXPECT_EQ(g.value(), 99u);
  // Gauges appear in the counters snapshot (one scalar-metric section).
  EXPECT_EQ(registry::get().counters_snapshot().at("test.gauge"), 99u);
}

// --- timers ----------------------------------------------------------------

TEST_F(NwobsTest, ScopeTimerRecordsPhases) {
  {
    NWOBS_SCOPE_TIMER("test.phase");
  }
  {
    NWOBS_SCOPE_TIMER("test.phase");
  }
  auto timers = registry::get().timers_snapshot();
  ASSERT_TRUE(timers.contains("test.phase"));
  EXPECT_EQ(timers.at("test.phase").count, 2u);
  EXPECT_GE(timers.at("test.phase").total_ms, 0.0);
  EXPECT_GE(timers.at("test.phase").total_ms, timers.at("test.phase").max_ms);
}

// --- pinned schema: what each instrumented family emits --------------------

TEST_F(NwobsTest, HyperBfsEmitsFrontierAndRelaxationCounters) {
  auto hg = figure1();
  (void)hg.bfs(0);
  auto counters = registry::get().counters_snapshot();
  ASSERT_TRUE(counters.contains("hyper_bfs.levels"));
  ASSERT_TRUE(counters.contains("hyper_bfs.frontier_total"));
  ASSERT_TRUE(counters.contains("hyper_bfs.frontier_peak"));
  ASSERT_TRUE(counters.contains("hyper_bfs.edges_relaxed"));
  EXPECT_GT(counters.at("hyper_bfs.levels"), 0u);
  EXPECT_GT(counters.at("hyper_bfs.frontier_total"), 0u);
  EXPECT_GE(counters.at("hyper_bfs.frontier_total"), counters.at("hyper_bfs.frontier_peak"));
  EXPECT_GT(counters.at("hyper_bfs.edges_relaxed"), 0u);
  // Direction bookkeeping: every level ran either top-down or bottom-up.
  std::uint64_t steps = 0;
  if (counters.contains("hyper_bfs.steps_top_down")) steps += counters.at("hyper_bfs.steps_top_down");
  if (counters.contains("hyper_bfs.steps_bottom_up")) steps += counters.at("hyper_bfs.steps_bottom_up");
  EXPECT_EQ(steps, counters.at("hyper_bfs.levels"));
  EXPECT_TRUE(registry::get().timers_snapshot().contains("hyper_bfs"));
}

TEST_F(NwobsTest, AdjoinBfsEmitsGraphBfsCounters) {
  auto hg = figure1();
  (void)hg.bfs_adjoin(0);
  auto counters = registry::get().counters_snapshot();
  ASSERT_TRUE(counters.contains("adjoin_bfs.runs"));
  EXPECT_EQ(counters.at("adjoin_bfs.runs"), 1u);
  // The adjoin driver delegates to the direction-optimizing graph BFS.
  ASSERT_TRUE(counters.contains("graph_bfs.levels"));
  ASSERT_TRUE(counters.contains("graph_bfs.frontier_total"));
  ASSERT_TRUE(counters.contains("graph_bfs.frontier_peak"));
  EXPECT_GT(counters.at("graph_bfs.levels"), 0u);
  EXPECT_TRUE(registry::get().timers_snapshot().contains("adjoin_bfs"));
}

TEST_F(NwobsTest, SlinegraphConstructionEmitsCandidateCounters) {
  auto hg = figure1();
  (void)hg.make_s_linegraph(1);  // hashmap path
  auto counters = registry::get().counters_snapshot();
  ASSERT_TRUE(counters.contains("slinegraph.candidate_pairs"));
  ASSERT_TRUE(counters.contains("slinegraph.pairs_emitted"));
  ASSERT_TRUE(counters.contains("slinegraph.hashmap_probes"));
  // Fig. 1 at s=1: the line graph is the path e0-e1-e2-e3 — 3 pairs, each
  // emitted once from its smaller endpoint.
  EXPECT_EQ(counters.at("slinegraph.pairs_emitted"), 3u);
  EXPECT_GE(counters.at("slinegraph.candidate_pairs"),
            counters.at("slinegraph.pairs_emitted"));
  EXPECT_TRUE(registry::get().timers_snapshot().contains("slinegraph.hashmap"));
}

TEST_F(NwobsTest, QueueAlgorithmsRecordOccupancyGauges) {
  auto he   = biadjacency<0>(nwtest::figure1_hypergraph());
  auto hn   = biadjacency<1>(nwtest::figure1_hypergraph());
  auto degs = he.degrees();
  std::vector<vertex_id_t> queue(he.size());
  for (std::size_t i = 0; i < queue.size(); ++i) queue[i] = static_cast<vertex_id_t>(i);
  (void)to_two_graph_queue_hashmap(queue, he, hn, degs, 1, he.size());
  (void)to_two_graph_queue_intersection(queue, he, hn, degs, 1, he.size());
  auto counters = registry::get().counters_snapshot();
  ASSERT_TRUE(counters.contains("slinegraph.alg1_queue_occupancy"));
  ASSERT_TRUE(counters.contains("slinegraph.alg2_queue_occupancy"));
  ASSERT_TRUE(counters.contains("slinegraph.alg2_pair_queue_occupancy"));
  EXPECT_EQ(counters.at("slinegraph.alg1_queue_occupancy"), queue.size());
  EXPECT_EQ(counters.at("slinegraph.alg2_queue_occupancy"), queue.size());
  auto timers = registry::get().timers_snapshot();
  EXPECT_TRUE(timers.contains("slinegraph.queue_hashmap"));
  EXPECT_TRUE(timers.contains("slinegraph.queue_intersection"));
}

TEST_F(NwobsTest, ToplexEmitsDominanceCounters) {
  auto hg = figure1();
  (void)hg.toplexes();
  auto counters = registry::get().counters_snapshot();
  ASSERT_TRUE(counters.contains("toplex.dominance_checks"));
  ASSERT_TRUE(counters.contains("toplex.dominance_checks_skipped"));
  EXPECT_TRUE(registry::get().timers_snapshot().contains("toplex"));
}

TEST_F(NwobsTest, BetweennessEmitsBatchAndDependencyCounters) {
  auto hg = figure1();
  auto lg = hg.make_s_linegraph(1);
  registry::get().reset();  // drop the construction counters
  (void)lg.s_betweenness_centrality_batched();
  auto counters = registry::get().counters_snapshot();
  ASSERT_TRUE(counters.contains("betweenness.sources"));
  ASSERT_TRUE(counters.contains("betweenness.batches"));
  ASSERT_TRUE(counters.contains("betweenness.levels"));
  ASSERT_TRUE(counters.contains("betweenness.frontier_total"));
  ASSERT_TRUE(counters.contains("betweenness.edges_relaxed"));
  ASSERT_TRUE(counters.contains("betweenness.dependencies"));
  // Fig. 1 at s=1: the 4-vertex path, all 4 sources in one default batch.
  EXPECT_EQ(counters.at("betweenness.sources"), 4u);
  EXPECT_EQ(counters.at("betweenness.batches"), 1u);
  EXPECT_GT(counters.at("betweenness.levels"), 0u);
  EXPECT_GT(counters.at("betweenness.dependencies"), 0u);
  EXPECT_TRUE(registry::get().timers_snapshot().contains("betweenness"));
}

TEST_F(NwobsTest, MotifEmitsWedgeCounters) {
  auto hg = figure1();
  (void)hg.motifs();
  auto counters = registry::get().counters_snapshot();
  ASSERT_TRUE(counters.contains("motif.centers"));
  ASSERT_TRUE(counters.contains("motif.wedges_scanned"));
  ASSERT_TRUE(counters.contains("motif.intersection_steps"));
  // Fig. 1: nodes 1, 2, 4, 6 each center exactly one wedge.
  EXPECT_EQ(counters.at("motif.centers"), 4u);
  EXPECT_EQ(counters.at("motif.wedges_scanned"), 4u);
  EXPECT_GT(counters.at("motif.intersection_steps"), 0u);
  EXPECT_TRUE(registry::get().timers_snapshot().contains("motif"));
}

TEST_F(NwobsTest, CountersAreDeterministicAcrossRuns) {
  // Two runs of the same algorithm on the same input produce identical
  // counters — the property that makes counter deltas diagnostic.
  auto hg = figure1();
  (void)hg.bfs(0);
  (void)hg.make_s_linegraph(1);
  (void)hg.toplexes();
  auto first = registry::get().counters_snapshot();
  registry::get().reset();
  (void)hg.bfs(0);
  (void)hg.make_s_linegraph(1);
  (void)hg.toplexes();
  EXPECT_EQ(first, registry::get().counters_snapshot());
}

// --- profile JSON ----------------------------------------------------------

TEST_F(NwobsTest, ProfileJsonHasPinnedSchema) {
  auto hg = figure1();
  (void)hg.bfs(0);
  (void)hg.bfs_adjoin(0);
  (void)hg.make_s_linegraph(1);
  (void)hg.toplexes();

  mini_json::value root;
  ASSERT_TRUE(mini_json::parse(nw::obs::profile_json(), root)) << nw::obs::profile_json();
  ASSERT_EQ(root.k, mini_json::value::kind::object);
  // Top-level sections, exactly these four.
  ASSERT_TRUE(root.members.contains("counters"));
  ASSERT_TRUE(root.members.contains("timers"));
  ASSERT_TRUE(root.members.contains("env"));
  ASSERT_TRUE(root.members.contains("threads"));
  EXPECT_EQ(root.members.size(), 4u);

  const auto& counters = root.members.at("counters");
  ASSERT_EQ(counters.k, mini_json::value::kind::object);
  // All three instrumented families are present.
  EXPECT_TRUE(counters.members.contains("hyper_bfs.edges_relaxed"));
  EXPECT_TRUE(counters.members.contains("graph_bfs.levels"));
  EXPECT_TRUE(counters.members.contains("slinegraph.pairs_emitted"));
  EXPECT_TRUE(counters.members.contains("toplex.dominance_checks"));
  for (const auto& [name, v] : counters.members) {
    EXPECT_EQ(v.k, mini_json::value::kind::number) << name;
  }

  const auto& timers = root.members.at("timers");
  ASSERT_EQ(timers.k, mini_json::value::kind::object);
  ASSERT_TRUE(timers.members.contains("hyper_bfs"));
  for (const auto& [name, t] : timers.members) {
    ASSERT_EQ(t.k, mini_json::value::kind::object) << name;
    EXPECT_TRUE(t.members.contains("count")) << name;
    EXPECT_TRUE(t.members.contains("total_ms")) << name;
    EXPECT_TRUE(t.members.contains("max_ms")) << name;
  }

  const auto& env = root.members.at("env");
  ASSERT_EQ(env.k, mini_json::value::kind::object);
  for (const char* knob : {"NWHY_NUM_THREADS", "NWHY_OBS", "NWHY_BENCH_SCALE",
                           "NWHY_BENCH_REPS", "NWHY_BENCH_THREADS", "NWHY_BENCH_PROFILE"}) {
    ASSERT_TRUE(env.members.contains(knob)) << knob;
    const auto& v = env.members.at(knob);
    EXPECT_TRUE(v.k == mini_json::value::kind::string || v.k == mini_json::value::kind::null)
        << knob;
  }

  EXPECT_EQ(root.members.at("threads").k, mini_json::value::kind::number);
  EXPECT_GE(root.members.at("threads").num, 1.0);
}

TEST_F(NwobsTest, WriteProfileRoundTripsThroughDisk) {
  registry::get().get_counter("test.roundtrip").add(0, 42);
  std::string path = ::testing::TempDir() + "nwobs_roundtrip.json";
  ASSERT_TRUE(nw::obs::write_profile(path));
  std::ifstream     f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  mini_json::value root;
  ASSERT_TRUE(mini_json::parse(ss.str(), root));
  ASSERT_TRUE(root.members.at("counters").members.contains("test.roundtrip"));
  EXPECT_EQ(root.members.at("counters").members.at("test.roundtrip").num, 42.0);
  std::remove(path.c_str());
}

TEST_F(NwobsTest, WriteProfileToUnwritablePathFailsGracefully) {
  EXPECT_FALSE(nw::obs::write_profile("/nonexistent-dir/profile.json"));
}

TEST_F(NwobsTest, EmptyRegistrySerializesToValidJson) {
  mini_json::value root;
  std::string      text = nw::obs::profile_json();
  ASSERT_TRUE(mini_json::parse(text, root)) << text;
  // reset() zeroes counters in place (references must stay valid), so
  // previously-registered names may appear — but all with value 0.
  for (const auto& [name, v] : root.members.at("counters").members) {
    EXPECT_EQ(v.num, 0.0) << name;
  }
  EXPECT_TRUE(root.members.at("timers").members.empty());
}
