// tests/test_generators.cpp — the synthetic dataset generators and the
// Table-I analog suite: determinism, and the distributional shape claims
// DESIGN.md's substitutions rest on.
#include <gtest/gtest.h>

#include "nwhy/algorithms/adjoin_algorithms.hpp"
#include "nwhy/biadjacency.hpp"
#include "nwhy/gen/dataset_suite.hpp"
#include "nwhy/gen/generators.hpp"
#include "nwutil/stats.hpp"
#include "test_util.hpp"

using namespace nw::hypergraph;
using nw::vertex_id_t;

namespace {

struct shape {
  std::size_t ne, nv;
  nw::degree_stats edge_stats, node_stats;
  std::size_t      components;

  explicit shape(biedgelist<> el) {
    el.sort_and_unique();
    biadjacency<0> he(el);
    biadjacency<1> hn(el);
    ne              = he.size();
    nv              = hn.size();
    auto ed         = he.degrees();
    auto nd         = hn.degrees();
    edge_stats      = nw::compute_degree_stats(std::span<const std::size_t>(ed));
    node_stats      = nw::compute_degree_stats(std::span<const std::size_t>(nd));
    auto adjoin     = make_adjoin_graph(el);
    auto labels     = nw::graph::cc_afforest(adjoin.graph);
    components      = nw::graph::count_components(labels);
  }
};

}  // namespace

TEST(Generators, UniformIsDeterministicPerSeed) {
  auto a = gen::uniform_random_hypergraph(100, 100, 5, 42);
  auto b = gen::uniform_random_hypergraph(100, 100, 5, 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  auto c = gen::uniform_random_hypergraph(100, 100, 5, 43);
  bool identical = a.size() == c.size();
  if (identical) {
    identical = true;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i] != c[i]) {
        identical = false;
        break;
      }
    }
  }
  EXPECT_FALSE(identical);
}

TEST(Generators, UniformHasNarrowDegreeSpread) {
  shape s(gen::uniform_random_hypergraph(2000, 2000, 10, 7));
  // Every hyperedge has <= 10 members (duplicates collapse), mean near 10.
  EXPECT_LE(s.edge_stats.max, 10u);
  EXPECT_GT(s.edge_stats.mean, 9.0);
  // Uniform node degrees: max is a small multiple of the mean, unlike the
  // skewed generators below.
  EXPECT_LT(static_cast<double>(s.node_stats.max), 5.0 * s.node_stats.mean);
}

TEST(Generators, UniformDenseEnoughFormsGiantComponent) {
  shape s(gen::uniform_random_hypergraph(3000, 3000, 10, 11));
  // The Rand1 claim: essentially one connected component.
  EXPECT_LE(s.components, 1u + s.nv / 100);
}

TEST(Generators, PowerlawIsSkewed) {
  shape s(gen::powerlaw_hypergraph(3000, 2000, 200, 1.6, 1.0, 13));
  // Hub hypernodes join far more hyperedges than the average.
  EXPECT_GT(static_cast<double>(s.node_stats.max), 20.0 * s.node_stats.mean);
  // Hyperedge sizes are also skewed.
  EXPECT_GT(static_cast<double>(s.edge_stats.max), 5.0 * s.edge_stats.mean);
}

TEST(Generators, PowerlawRespectsBounds) {
  auto el = gen::powerlaw_hypergraph(500, 300, 50, 1.5, 1.0, 17);
  for (std::size_t i = 0; i < el.size(); ++i) {
    auto [e, v] = el[i];
    EXPECT_LT(e, 500u);
    EXPECT_LT(v, 300u);
  }
}

TEST(Generators, PlantedCommunitiesHaveManyComponents) {
  shape s(gen::planted_community_hypergraph(800, 4000, 30, 1.5, 0.05, 19));
  // Low overlap => the structure stays fragmented (the Orkut-group/Web
  // property the paper's BFS discussion leans on).
  EXPECT_GT(s.components, 20u);
}

TEST(Generators, NestedChainsAreExactlyNested) {
  auto el = gen::nested_hypergraph(3, 4);
  el.sort_and_unique();
  biadjacency<0> he(el);
  EXPECT_EQ(he.size(), 12u);
  for (std::size_t c = 0; c < 3; ++c) {
    for (std::size_t d = 0; d < 4; ++d) {
      EXPECT_EQ(he.degree(c * 4 + d), d + 1);
    }
  }
}

TEST(Generators, StarHasOneGiantEdge) {
  auto el = gen::star_hypergraph(500, 20, 23);
  el.sort_and_unique();
  biadjacency<0> he(el);
  EXPECT_EQ(he.degree(0), 500u);
  for (std::size_t e = 1; e < he.size(); ++e) EXPECT_LE(he.degree(e), 2u);
}

// --- Table-I analog suite -----------------------------------------------------------

TEST(DatasetSuite, HasSixDatasetsInPaperOrder) {
  auto suite = gen::dataset_suite();
  ASSERT_EQ(suite.size(), 6u);
  EXPECT_EQ(suite[0].name, "com-Orkut-sim");
  EXPECT_EQ(suite[5].name, "Rand1-sim");
  EXPECT_EQ(suite[4].type, "Web");
}

TEST(DatasetSuite, AllBuildersProduceNonTrivialHypergraphs) {
  for (const auto& spec : gen::dataset_suite()) {
    auto el = spec.build(/*scale=*/1);
    EXPECT_GT(el.size(), 1000u) << spec.name;
    EXPECT_GT(el.num_vertices(0), 100u) << spec.name;
    EXPECT_GT(el.num_vertices(1), 100u) << spec.name;
  }
}

TEST(DatasetSuite, SocialAndWebAnalogsAreSkewedRand1IsNot) {
  // The Table-I caption: "All the real-world hypergraphs have a skewed
  // hyperedge degree distribution."  Check the suite reproduces skew where
  // the paper has it and uniformity for Rand1.
  auto suite = gen::dataset_suite();
  auto skew  = [](const gen::dataset_spec& spec) {
    shape s(spec.build(1));
    return static_cast<double>(s.node_stats.max) / std::max(1.0, s.node_stats.mean);
  };
  EXPECT_GT(skew(suite[0]), 10.0) << "com-Orkut-sim";
  EXPECT_GT(skew(suite[4]), 10.0) << "Web-sim";
  EXPECT_LT(skew(suite[5]), 5.0) << "Rand1-sim must stay uniform";
}

TEST(DatasetSuite, Rand1HasGiantComponentCommunityAnalogsDoNot) {
  auto suite = gen::dataset_suite();
  shape rand1(suite[5].build(1));
  EXPECT_LE(rand1.components, rand1.nv / 50 + 1);
  shape orkut_group(suite[2].build(1));
  EXPECT_GT(orkut_group.components, 10u);
}
