// tests/test_compress.cpp — the compressed NWHYCSR2 section codec and the
// block-decoding adjacency view.
//
// Three layers under test:
//
//   codec     svb::encode / compressed_targets round-trips across lengths
//             that straddle every boundary (empty, sub-group, group,
//             block-1/block/block+1) and value shapes that stress every
//             byte width, plus the scalar-vs-SIMD bit-identity contract;
//   view      compressed_adjacency rows, point queries and the bounded
//             row-cache lifetime contract, the duplicate-row dictionary,
//             and materialization back to an owned CSR;
//   ladder    every traversal / s-line family that runs on the compressed
//             view must produce bit-identical results to the same engine
//             on the uncompressed bi-adjacency, at 1/2/4/hw threads over
//             the differential seed stream (NWHY_TEST_SEED /
//             NWHY_TEST_ITERS replay knobs, see prop_harness.hpp).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "nwhy/gen/generators.hpp"
#include "nwhy/io/compress.hpp"
#include "nwhy/io/csr_snapshot.hpp"
#include "nwhy/nwhypergraph.hpp"
#include "prop_harness.hpp"
#include "test_util.hpp"

using namespace nw::hypergraph;
using nw::vertex_id_t;
using nwtest::same_partition;

namespace {

/// Adversarial value shapes for the codec: each stresses a different
/// control-byte population.
enum class shape { sorted_random, all_small, full_range, decreasing };

std::vector<vertex_id_t> make_values(std::size_t n, shape sh, std::uint64_t seed) {
  nw::xoshiro256ss         rng(seed);
  std::vector<vertex_id_t> v(n);
  switch (sh) {
    case shape::sorted_random:  // CSR-target-like: sorted, mixed widths
      for (std::size_t i = 0; i < n; ++i) {
        v[i] = (i ? v[i - 1] : 0) + static_cast<vertex_id_t>(rng.bounded(1u << 18));
      }
      break;
    case shape::all_small:  // every delta fits one byte
      for (std::size_t i = 0; i < n; ++i) {
        v[i] = (i ? v[i - 1] : 0) + static_cast<vertex_id_t>(rng.bounded(100));
      }
      break;
    case shape::full_range:  // alternating extremes: every delta needs 4 bytes
      for (std::size_t i = 0; i < n; ++i) v[i] = (i & 1) ? 0xFFFF'FFFFu : 0;
      break;
    case shape::decreasing:  // negative deltas exercise the wrapping zigzag
      for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<vertex_id_t>(4u * (n - i));
      break;
  }
  return v;
}

const std::vector<shape>       kShapes  = {shape::sorted_random, shape::all_small,
                                           shape::full_range, shape::decreasing};
const std::vector<std::size_t> kLengths = {0, 1, 3, 4, 5, 63, 4095, 4096, 4097, 10000};

const char* shape_name(shape sh) {
  switch (sh) {
    case shape::sorted_random: return "sorted_random";
    case shape::all_small: return "all_small";
    case shape::full_range: return "full_range";
    case shape::decreasing: return "decreasing";
  }
  return "?";
}

/// Decode every block of a compressed_targets through `fn(block, out*)`
/// into one flat vector.
template <class Fn>
std::vector<vertex_id_t> decode_all(const compressed_targets& ct, Fn&& fn) {
  std::vector<vertex_id_t> out(ct.num_values());
  std::size_t              pos = 0;
  for (std::uint64_t b = 0; b < ct.num_blocks(); ++b) {
    fn(b, out.data() + pos);
    pos += ct.block_values(b);
  }
  return out;
}

/// Write `hg` as a compressed snapshot into memory and re-read it in
/// stream mode, so edges_view / nodes_view are live block-decoding views
/// (the returned snapshot owns the staged bytes they point into).
csr_snapshot stream_views(const NWHypergraph& hg, csr_compress_options opt = {}) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  write_csr_snapshot(ss, hg.hyperedges(), hg.hypernodes(), opt);
  ss.seekg(0);
  return read_csr_snapshot(ss, "mem", snapshot_decode::stream);
}

/// A hypergraph where half the hyperedges are duplicates (same node set),
/// so the writer's duplicate-row dictionary engages.
biedgelist<> duplicated_hypergraph(std::uint64_t seed) {
  nw::xoshiro256ss rng(seed);
  biedgelist<>     el;
  const std::size_t uniques = 40;
  for (std::size_t e = 0; e < uniques; ++e) {
    std::vector<vertex_id_t> row;
    const std::size_t        deg = 1 + rng.bounded(6);
    for (std::size_t k = 0; k < deg; ++k) row.push_back(static_cast<vertex_id_t>(rng.bounded(64)));
    for (auto v : row) {
      el.push_back(static_cast<vertex_id_t>(e), v);
      el.push_back(static_cast<vertex_id_t>(e + uniques), v);  // exact duplicate row
    }
  }
  el.sort_and_unique();
  return el;
}

/// A unique scratch path per test, removed on destruction.
struct scratch_file {
  std::string path;
  explicit scratch_file(const std::string& tag) {
    static int counter = 0;
    path = (std::filesystem::temp_directory_path() /
            ("nwhy_compress_" + tag + "_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter++) + ".nwcsr"))
               .string();
  }
  ~scratch_file() {
    std::error_code ec;
    std::filesystem::remove(path, ec);
  }
};

std::vector<vertex_id_t> row_of(const biadjacency<0>& g, std::size_t u) {
  std::vector<vertex_id_t> r;
  for (auto&& e : g[u]) r.push_back(target(e));
  return r;
}

/// A few BFS sources spread across the hyperedge id range.
std::vector<vertex_id_t> sources_for(std::size_t ne) {
  std::vector<vertex_id_t> s;
  if (ne == 0) return s;
  s.push_back(0);
  if (ne > 2) s.push_back(static_cast<vertex_id_t>(ne / 2));
  if (ne > 1) s.push_back(static_cast<vertex_id_t>(ne - 1));
  return s;
}

}  // namespace

// --- codec -------------------------------------------------------------------------

TEST(SvbCodec, RoundTripsAcrossLengthsShapesAndBlockSizes) {
  for (std::uint32_t bs : {std::uint32_t{64}, svb::default_block_size}) {
    for (auto sh : kShapes) {
      for (std::size_t n : kLengths) {
        SCOPED_TRACE(std::string(shape_name(sh)) + " n=" + std::to_string(n) +
                     " bs=" + std::to_string(bs));
        auto values  = make_values(n, sh, 0xC0DEC + n);
        auto payload = svb::encode(values, bs);
        compressed_targets ct(payload, "mem", 0);
        ASSERT_EQ(ct.num_values(), n);
        ASSERT_EQ(ct.block_size(), bs);
        ASSERT_EQ(ct.num_blocks(), (n + bs - 1) / bs);
        auto decoded = decode_all(ct, [&](std::uint64_t b, vertex_id_t* out) {
          ct.decode_block(b, out);
        });
        EXPECT_EQ(decoded, values);
      }
    }
  }
}

TEST(SvbCodec, ScalarAndSimdDecodesAreBitIdentical) {
  // The contract behind the NWHY_SIMD toggle: the SSSE3/NEON kernels and
  // the portable decoder produce the same bytes on every input, including
  // the partial-group tails at lengths 4095/4097.  When the build has no
  // SIMD kernel both paths are the scalar one and this holds trivially.
  for (auto sh : kShapes) {
    for (std::size_t n : {std::size_t{4095}, std::size_t{4096}, std::size_t{4097},
                          std::size_t{10000}}) {
      SCOPED_TRACE(std::string(shape_name(sh)) + " n=" + std::to_string(n));
      auto values  = make_values(n, sh, 0x51D + n);
      auto payload = svb::encode(values, svb::default_block_size);
      compressed_targets ct(payload, "mem", 0);
      auto via_dispatch = decode_all(ct, [&](std::uint64_t b, vertex_id_t* out) {
        ct.decode_block(b, out);
      });
      auto via_scalar = decode_all(ct, [&](std::uint64_t b, vertex_id_t* out) {
        ct.decode_block_scalar(b, out);
      });
      ASSERT_EQ(via_dispatch, via_scalar);
      ASSERT_EQ(via_scalar, values);
    }
  }
}

TEST(SvbCodec, EncoderIsDeterministic) {
  // docs/IO_FORMATS.md §4 promises byte-identical output for identical
  // input: encode twice (and once through a fresh vector) and compare.
  auto values = make_values(9000, shape::sorted_random, 77);
  auto a      = svb::encode(values, svb::default_block_size);
  auto b      = svb::encode(values, svb::default_block_size);
  EXPECT_EQ(a, b);
  auto copy = values;
  EXPECT_EQ(svb::encode(copy, svb::default_block_size), a);
}

TEST(SvbCodec, BlockMinMaxBracketsEveryBlock) {
  auto values = make_values(10000, shape::sorted_random, 3);
  auto payload = svb::encode(values, 256);
  compressed_targets ct(payload, "mem", 0);
  std::size_t pos = 0;
  for (std::uint64_t b = 0; b < ct.num_blocks(); ++b) {
    auto [lo, hi] = ct.block_min_max(b);
    for (std::uint32_t i = 0; i < ct.block_values(b); ++i) {
      EXPECT_GE(values[pos + i], lo);
      EXPECT_LE(values[pos + i], hi);
    }
    pos += ct.block_values(b);
  }
}

// --- duplicate-row dictionary -------------------------------------------------------

TEST(RowDictionary, DeduplicatesIdenticalRowsAndReconstructs) {
  NWHypergraph hg(duplicated_hypergraph(11));
  const auto&  csr = hg.hyperedges().csr();
  auto         idx = csr.indices();
  auto         tgt = csr.targets();
  auto         dict = build_row_dictionary(idx, tgt);
  ASSERT_TRUE(dict.has_value());
  EXPECT_LT(dict->stored.size(), tgt.size());  // duplicates stored once
  EXPECT_LT(dict->num_unique(), hg.num_hyperedges());
  ASSERT_EQ(dict->refs.size(), hg.num_hyperedges());
  // Every row reconstructs exactly from its dictionary slot.
  for (std::size_t u = 0; u < hg.num_hyperedges(); ++u) {
    auto r = dict->refs[u];
    ASSERT_LT(r, dict->num_unique());
    auto lo = dict->dict_indices[r], hi = dict->dict_indices[r + 1];
    ASSERT_EQ(hi - lo, idx[u + 1] - idx[u]) << "row " << u;
    for (std::size_t k = 0; k < hi - lo; ++k) {
      EXPECT_EQ(dict->stored[lo + k], tgt[idx[u] + k]) << "row " << u << " slot " << k;
    }
  }
}

TEST(RowDictionary, NoDuplicatesMeansNoDictionary) {
  NWHypergraph hg(nwtest::figure1_hypergraph());  // 4 distinct hyperedges
  const auto&  csr = hg.hyperedges().csr();
  EXPECT_FALSE(build_row_dictionary(csr.indices(), csr.targets()).has_value());
}

// --- the compressed adjacency view --------------------------------------------------

TEST(CompressedAdjacency, RowsDegreesAndContainsMatchUncompressed) {
  for (auto seed : nwtest::differential_seeds(0xC0'0000)) {
    NWHY_SEED_TRACE(seed);
    NWHypergraph hg(gen::arbitrary_hypergraph(seed));
    auto         snap = stream_views(hg);
    ASSERT_TRUE(snap.streaming());
    const auto& E = *snap.edges_view;
    const auto& N = *snap.nodes_view;
    ASSERT_EQ(E.size(), hg.num_hyperedges());
    ASSERT_EQ(N.size(), hg.num_hypernodes());
    ASSERT_EQ(E.num_edges(), hg.num_incidences());
    for (std::size_t u = 0; u < E.size(); ++u) {
      auto expect = row_of(hg.hyperedges(), u);
      auto got    = E[u];
      ASSERT_EQ(got.size(), expect.size()) << "row " << u;
      ASSERT_EQ(E.degree(u), expect.size());
      for (std::size_t k = 0; k < expect.size(); ++k) ASSERT_EQ(got[k], expect[k]);
      for (auto t : expect) EXPECT_TRUE(E.contains(u, t));
      // Probe absences around each present target (rows are sorted, so
      // value+1 is absent unless it is the next element).
      for (std::size_t k = 0; k < expect.size(); ++k) {
        vertex_id_t probe = expect[k] + 1;
        bool        present = (k + 1 < expect.size() && expect[k + 1] == probe);
        EXPECT_EQ(E.contains(u, probe), present) << "row " << u << " probe " << probe;
      }
      if (!expect.empty()) {
        EXPECT_FALSE(E.contains(u, expect.back() + 2));
      }
    }
  }
}

TEST(CompressedAdjacency, RowSpansSurviveThreeOtherRowMisses) {
  // The documented lifetime contract: a returned span stays valid until
  // four *other*-row cache misses on the same structure from the same
  // thread.  Engines hold at most two live rows; probe with three.
  NWHypergraph hg(gen::arbitrary_hypergraph(0xA11A5));
  auto         snap = stream_views(hg);
  const auto&  E    = *snap.edges_view;
  if (E.size() < 5) GTEST_SKIP() << "need >= 5 rows";
  auto                     first = E[0];
  std::vector<vertex_id_t> copy(first.begin(), first.end());
  auto r1 = E[1];
  auto r2 = E[2];
  auto r3 = E[3];
  (void)r1;
  (void)r2;
  (void)r3;
  ASSERT_EQ(first.size(), copy.size());
  for (std::size_t k = 0; k < copy.size(); ++k) EXPECT_EQ(first[k], copy[k]);
  // Two structures never share cache slots: a row of each stays valid.
  const auto& N  = *snap.nodes_view;
  auto        er = E[0];
  auto        nr = N[0];
  EXPECT_EQ(std::vector<vertex_id_t>(er.begin(), er.end()), row_of(hg.hyperedges(), 0));
  EXPECT_EQ(std::vector<vertex_id_t>(nr.begin(), nr.end()),
            [&] {
              std::vector<vertex_id_t> r;
              for (auto&& e : hg.hypernodes()[0]) r.push_back(target(e));
              return r;
            }());
}

TEST(CompressedAdjacency, MaterializeRebuildsTheExactCsr) {
  for (auto seed : nwtest::differential_seeds(0xAB'0000)) {
    NWHY_SEED_TRACE(seed);
    NWHypergraph hg(gen::arbitrary_hypergraph(seed));
    auto         snap = stream_views(hg);
    auto         edges = snap.edges_view->materialize();
    auto         nodes = snap.nodes_view->materialize();
    const auto&  eref  = hg.hyperedges().csr();
    const auto&  nref  = hg.hypernodes().csr();
    ASSERT_EQ(edges.num_edges(), eref.targets().size());
    ASSERT_EQ(nodes.num_edges(), nref.targets().size());
    for (std::size_t i = 0; i < eref.indices().size(); ++i) {
      ASSERT_EQ(edges.indices()[i], eref.indices()[i]);
    }
    for (std::size_t i = 0; i < eref.targets().size(); ++i) {
      ASSERT_EQ(edges.targets()[i], eref.targets()[i]);
    }
    for (std::size_t i = 0; i < nref.targets().size(); ++i) {
      ASSERT_EQ(nodes.targets()[i], nref.targets()[i]);
    }
  }
}

// --- compressed snapshots end to end ------------------------------------------------

TEST(CompressedSnapshot, MaterializeModeReadsBackTheExactCsr) {
  for (auto seed : nwtest::differential_seeds(0x5EC'0000)) {
    NWHY_SEED_TRACE(seed);
    NWHypergraph      hg(gen::arbitrary_hypergraph(seed));
    std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
    write_csr_snapshot(ss, hg.hyperedges(), hg.hypernodes(), csr_compress_options{});
    ss.seekg(0);
    auto snap = read_csr_snapshot(ss, "mem");  // default: materialize
    EXPECT_FALSE(snap.streaming());
    const auto& eref = hg.hyperedges().csr();
    ASSERT_EQ(snap.edges.csr().targets().size(), eref.targets().size());
    for (std::size_t i = 0; i < eref.targets().size(); ++i) {
      ASSERT_EQ(snap.edges.csr().targets()[i], eref.targets()[i]);
    }
    for (std::size_t i = 0; i < eref.indices().size(); ++i) {
      ASSERT_EQ(snap.edges.csr().indices()[i], eref.indices()[i]);
    }
    // Adoption into the facade must behave exactly like the raw snapshot.
    NWHypergraph re(std::move(snap));
    EXPECT_EQ(re.num_hyperedges(), hg.num_hyperedges());
    EXPECT_EQ(re.num_incidences(), hg.num_incidences());
  }
}

TEST(CompressedSnapshot, MmapPathStreamsAndMaterializes) {
  NWHypergraph hg(gen::arbitrary_hypergraph(0xF00D));
  scratch_file f("mmap");
  hg.save_csr_snapshot(f.path, csr_compress_options{});
  {  // materialize straight off the map
    auto snap = load_csr_snapshot(f.path, /*verify_checksums=*/true);
    EXPECT_FALSE(snap.streaming());
    const auto& eref = hg.hyperedges().csr();
    ASSERT_EQ(snap.edges.csr().targets().size(), eref.targets().size());
    for (std::size_t i = 0; i < eref.targets().size(); ++i) {
      ASSERT_EQ(snap.edges.csr().targets()[i], eref.targets()[i]);
    }
  }
  {  // stream mode: traverse the views backed by the mapped bytes
    auto snap = load_csr_snapshot(f.path, /*verify_checksums=*/true, snapshot_decode::stream);
    ASSERT_TRUE(snap.streaming());
    auto on_view = hyper_bfs_top_down(*snap.edges_view, *snap.nodes_view, 0);
    auto on_raw  = hyper_bfs_top_down(hg.hyperedges(), hg.hypernodes(), 0);
    EXPECT_EQ(on_view.dist_edge, on_raw.dist_edge);
    EXPECT_EQ(on_view.dist_node, on_raw.dist_node);
  }
}

TEST(CompressedSnapshot, DictionarySnapshotRoundTripsAndShrinks) {
  NWHypergraph hg(duplicated_hypergraph(0xD1C7));
  scratch_file f("dict");
  hg.save_csr_snapshot(f.path, csr_compress_options{});
  // The duplicate-heavy E2N side must actually use the dictionary kinds.
  std::ifstream in(f.path, std::ios::binary);
  in.seekg(0, std::ios::end);
  const auto file_size = static_cast<std::uint64_t>(in.tellg());
  in.seekg(0);
  std::vector<unsigned char> head(static_cast<std::size_t>(
      std::min<std::uint64_t>(file_size, csr_detail::header_bytes +
                                             csr_detail::max_section_count *
                                                 csr_detail::table_entry_bytes)));
  in.read(reinterpret_cast<char*>(head.data()), static_cast<std::streamsize>(head.size()));
  auto h = csr_detail::parse_header(head.data(), file_size, f.path);
  EXPECT_NE(h.find(csr_sec_e2n_dict_refs), nullptr);
  EXPECT_NE(h.find(csr_sec_e2n_dict_indices), nullptr);
  EXPECT_EQ(h.find(csr_sec_e2n_targets), nullptr);

  auto snap = load_csr_snapshot(f.path, /*verify_checksums=*/true);
  const auto& eref = hg.hyperedges().csr();
  ASSERT_EQ(snap.edges.csr().targets().size(), eref.targets().size());
  for (std::size_t i = 0; i < eref.targets().size(); ++i) {
    ASSERT_EQ(snap.edges.csr().targets()[i], eref.targets()[i]);
  }
  // And the streamed dictionary view serves correct rows + point queries.
  auto streamed = load_csr_snapshot(f.path, false, snapshot_decode::stream);
  ASSERT_TRUE(streamed.edges_view.has_value());
  ASSERT_TRUE(streamed.edges_view->has_dictionary());
  for (std::size_t u = 0; u < hg.num_hyperedges(); ++u) {
    auto expect = row_of(hg.hyperedges(), u);
    auto got    = (*streamed.edges_view)[u];
    ASSERT_EQ(got.size(), expect.size()) << "row " << u;
    for (std::size_t k = 0; k < expect.size(); ++k) ASSERT_EQ(got[k], expect[k]);
    for (auto t : expect) EXPECT_TRUE(streamed.edges_view->contains(u, t));
  }
}

// --- differential ladder ------------------------------------------------------------

TEST(CompressedDifferential, TraversalFamiliesMatchUncompressed) {
  nwtest::concurrency_guard guard;
  for (unsigned threads : nwtest::differential_thread_counts()) {
    nw::par::thread_pool::set_default_concurrency(threads);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    for (auto seed : nwtest::differential_seeds(0xCB'F500)) {
      NWHY_SEED_TRACE(seed);
      NWHypergraph hg(gen::arbitrary_hypergraph(seed));
      auto         snap = stream_views(hg);
      ASSERT_TRUE(snap.streaming());
      const auto& Ec = *snap.edges_view;
      const auto& Nc = *snap.nodes_view;
      const auto& E  = hg.hyperedges();
      const auto& N  = hg.hypernodes();

      for (vertex_id_t src : sources_for(hg.num_hyperedges())) {
        SCOPED_TRACE("src=" + std::to_string(src));
        auto oracle = hyper_bfs_top_down(E, N, src);
        auto td     = hyper_bfs_top_down(Ec, Nc, src);
        EXPECT_EQ(td.dist_edge, oracle.dist_edge) << "top_down on compressed";
        EXPECT_EQ(td.dist_node, oracle.dist_node) << "top_down on compressed";
        auto bu = hyper_bfs_bottom_up(Ec, Nc, src);
        EXPECT_EQ(bu.dist_edge, oracle.dist_edge) << "bottom_up on compressed";
        EXPECT_EQ(bu.dist_node, oracle.dist_node) << "bottom_up on compressed";
        auto dir = hyper_bfs(Ec, Nc, src);
        EXPECT_EQ(dir.dist_edge, oracle.dist_edge) << "direction-optimizing on compressed";
        EXPECT_EQ(dir.dist_node, oracle.dist_node) << "direction-optimizing on compressed";
      }

      auto cc_raw = hyper_cc(E, N);
      auto cc_cmp = hyper_cc(Ec, Nc);
      EXPECT_EQ(cc_cmp.labels_edge, cc_raw.labels_edge);
      EXPECT_EQ(cc_cmp.labels_node, cc_raw.labels_node);

      EXPECT_EQ(toplexes(Ec, Nc), toplexes(E, N));
      EXPECT_EQ(toplexes_serial(Ec), toplexes_serial(E));
    }
  }
}

TEST(CompressedDifferential, SLineFamiliesMatchUncompressed) {
  nwtest::concurrency_guard guard;
  const std::vector<std::size_t> svalues = {1, 2, 3};
  for (unsigned threads : nwtest::differential_thread_counts()) {
    nw::par::thread_pool::set_default_concurrency(threads);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    for (auto seed : nwtest::differential_seeds(0x51'F500)) {
      NWHY_SEED_TRACE(seed);
      NWHypergraph hg(gen::arbitrary_hypergraph(seed));
      auto         snap = stream_views(hg);
      ASSERT_TRUE(snap.streaming());
      const auto& Ec  = *snap.edges_view;
      const auto& Nc  = *snap.nodes_view;
      const auto& E   = hg.hyperedges();
      const auto& N   = hg.hypernodes();
      const auto& deg = hg.edge_sizes();
      // The intersection family walks two rows of the same structure at
      // once with long-lived spans, so it runs on the materialized CSR —
      // the documented pattern for set-intersection kernels.
      auto Em = snap.edges_view->materialize();
      auto Nm = snap.nodes_view->materialize();

      for (std::size_t s : svalues) {
        SCOPED_TRACE("s=" + std::to_string(s));
        auto expected = nwtest::canonical_pairs(to_two_graph_hashmap(E, N, deg, s));
        EXPECT_EQ(nwtest::canonical_pairs(to_two_graph_hashmap(Ec, Nc, deg, s)), expected)
            << "hashmap on compressed";
        EXPECT_EQ(nwtest::canonical_pairs(to_two_graph_intersection(Em, Nm, deg, s)), expected)
            << "intersection on materialized-from-compressed";

        auto comp_raw = s_connected_components_implicit(E, N, deg, s);
        auto comp_cmp = s_connected_components_implicit(Ec, Nc, deg, s);
        EXPECT_TRUE(same_partition(comp_raw, comp_cmp)) << "implicit s-components";

        const std::size_t ne = hg.num_hyperedges();
        if (ne > 1) {
          for (auto [a, b] : {std::pair<vertex_id_t, vertex_id_t>{0, vertex_id_t(ne - 1)},
                              {vertex_id_t(ne / 2), vertex_id_t(ne - 1)}}) {
            EXPECT_EQ(s_distance_implicit(Ec, Nc, deg, s, a, b),
                      s_distance_implicit(E, N, deg, s, a, b))
                << "implicit s-distance " << a << "->" << b;
          }
        }
      }
    }
  }
}
