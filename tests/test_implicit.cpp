// tests/test_implicit.cpp — implicit s-line traversal (no materialized
// line graph) against the materialized facade, plus the configuration-
// model generator and the parallel CSR builder's determinism.
#include <gtest/gtest.h>

#include "nwhy/nwhypergraph.hpp"
#include "nwhy/slinegraph/implicit.hpp"
#include "test_util.hpp"

using namespace nw::hypergraph;
using nw::vertex_id_t;
using nwtest::same_partition;

// --- implicit vs materialized ---------------------------------------------------

class ImplicitParam : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t>> {};

TEST_P(ImplicitParam, ComponentsMatchMaterialized) {
  auto [seed, s] = GetParam();
  NWHypergraph hg(gen::powerlaw_hypergraph(80, 60, 18, 1.4, 1.0, seed));
  auto         implicit     = hg.s_connected_components_implicit(s);
  auto         materialized = hg.make_s_linegraph(s).s_connected_components();
  ASSERT_EQ(implicit.size(), materialized.size());
  // Same inactive set and same partition of active hyperedges.
  std::vector<vertex_id_t> a, b;
  for (std::size_t e = 0; e < implicit.size(); ++e) {
    EXPECT_EQ(implicit[e] == nw::null_vertex<>, materialized[e] == nw::null_vertex<>) << e;
    if (implicit[e] != nw::null_vertex<>) {
      a.push_back(implicit[e]);
      b.push_back(materialized[e]);
    }
  }
  EXPECT_TRUE(same_partition(a, b));
}

TEST_P(ImplicitParam, DistancesMatchMaterialized) {
  auto [seed, s] = GetParam();
  NWHypergraph hg(gen::uniform_random_hypergraph(70, 50, 5, seed + 7));
  auto         lg = hg.make_s_linegraph(s);
  for (vertex_id_t src : {0u, 9u}) {
    for (vertex_id_t dst : {3u, 25u, 60u}) {
      auto a = hg.s_distance_implicit(s, src, dst);
      auto b = lg.s_distance(src, dst);
      // The materialized route reports distance even between inactive
      // isolated vertices (src == dst); the implicit one declares them
      // unreachable.  Compare only when both endpoints are active.
      if (hg.edge_sizes()[src] >= s && hg.edge_sizes()[dst] >= s) {
        EXPECT_EQ(a, b) << src << "->" << dst;
      } else {
        EXPECT_FALSE(a.has_value());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SeedsAndS, ImplicitParam,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(std::size_t{1}, std::size_t{2},
                                                              std::size_t{3})));

TEST(Implicit, Figure1KnownAnswers) {
  NWHypergraph hg(nwtest::figure1_hypergraph());
  auto         comp1 = hg.s_connected_components_implicit(1);
  for (auto c : comp1) EXPECT_EQ(c, comp1[0]);
  auto comp2 = hg.s_connected_components_implicit(2);
  EXPECT_EQ(comp2[0], comp2[1]);
  EXPECT_NE(comp2[2], comp2[0]);
  EXPECT_NE(comp2[3], comp2[2]);

  EXPECT_EQ(hg.s_distance_implicit(1, 0, 3), std::optional<std::size_t>{3});
  EXPECT_EQ(hg.s_distance_implicit(1, 0, 0), std::optional<std::size_t>{0});
  EXPECT_FALSE(hg.s_distance_implicit(2, 0, 3).has_value());
}

TEST(Implicit, SDegreeMatchesMaterialized) {
  NWHypergraph hg(gen::planted_community_hypergraph(50, 120, 20, 1.5, 0.3, 77));
  const auto&  he = hg.hyperedges();
  const auto&  hn = hg.hypernodes();
  for (std::size_t s : {1, 2}) {
    auto lg = hg.make_s_linegraph(s);
    for (vertex_id_t e = 0; e < hg.num_hyperedges(); e += 7) {
      EXPECT_EQ(s_degree_implicit(he, hn, hg.edge_sizes(), s, e), lg.s_degree(e))
          << "e=" << e << " s=" << s;
    }
  }
}

// --- configuration model ----------------------------------------------------------

TEST(ConfigurationModel, RealizesPrescribedSequences) {
  std::vector<std::size_t> sizes{3, 2, 4, 1};
  std::vector<std::size_t> degrees{2, 2, 2, 2, 1, 1};
  auto                     el = gen::configuration_model_hypergraph(sizes, degrees, 99);
  EXPECT_EQ(el.size(), 10u);
  // Before dedupe, stub counts are exact.
  std::vector<std::size_t> got_sizes(4, 0), got_degrees(6, 0);
  for (std::size_t i = 0; i < el.size(); ++i) {
    auto [e, v] = el[i];
    ++got_sizes[e];
    ++got_degrees[v];
  }
  EXPECT_EQ(got_sizes, sizes);
  EXPECT_EQ(got_degrees, degrees);
}

TEST(ConfigurationModel, DeterministicPerSeed) {
  std::vector<std::size_t> sizes(50, 4);
  std::vector<std::size_t> degrees(100, 2);
  auto a = gen::configuration_model_hypergraph(sizes, degrees, 5);
  auto b = gen::configuration_model_hypergraph(sizes, degrees, 5);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(ConfigurationModel, RejectsMismatchedSums) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  std::vector<std::size_t> sizes{3};
  std::vector<std::size_t> degrees{1};
  EXPECT_DEATH(gen::configuration_model_hypergraph(sizes, degrees, 1), "equal stub sums");
}

TEST(ConfigurationModel, PowerlawSequenceSurvivesAnalytics) {
  // Zipf-ish size sequence with matching degree total.
  std::vector<std::size_t> sizes;
  std::size_t              total = 0;
  for (std::size_t e = 0; e < 60; ++e) {
    std::size_t s = 1 + 24 / (e + 1);
    sizes.push_back(s);
    total += s;
  }
  std::vector<std::size_t> degrees(total, 1);  // every node used exactly once
  auto         el = gen::configuration_model_hypergraph(sizes, degrees, 3);
  NWHypergraph hg(std::move(el));
  // One membership per node => hyperedges are disjoint => no 1-line edges.
  EXPECT_EQ(hg.make_s_linegraph(1).num_edges(), 0u);
  EXPECT_EQ(hg.edge_sizes(), sizes);
}

// --- parallel CSR builder determinism ----------------------------------------------

TEST(ParallelCsrBuild, IdenticalToSerialAcrossPoolSizes) {
  // Large enough to trigger the parallel path (m >= 2^16).
  auto el = gen::uniform_random_hypergraph(20000, 15000, 5, 0xC5A);
  el.sort_and_unique();

  nw::par::thread_pool::set_default_concurrency(1);
  biadjacency<0> serial(el);
  for (unsigned threads : {2u, 4u, 8u}) {
    nw::par::thread_pool::set_default_concurrency(threads);
    biadjacency<0> parallel(el);
    ASSERT_EQ(parallel.num_edges(), serial.num_edges());
    for (std::size_t e = 0; e < serial.size(); e += 997) {
      auto a = serial[e];
      auto b = parallel[e];
      EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end())) << "edge " << e;
    }
  }
  nw::par::thread_pool::set_default_concurrency(
      std::max(1u, std::thread::hardware_concurrency()));
}

TEST(ParallelScan, MatchesSerialScan) {
  nw::par::thread_pool pool(4);
  for (std::size_t n : {0u, 1u, 100u, 1u << 16}) {
    std::vector<std::uint64_t> values(n);
    nw::xoshiro256ss           rng(n);
    for (auto& v : values) v = rng.bounded(100);
    auto expected = values;
    std::uint64_t total = 0;
    for (auto& v : expected) {
      auto next = total + v;
      v         = total;
      total     = next;
    }
    auto got_total = nw::par::parallel_exclusive_scan(values, pool);
    EXPECT_EQ(values, expected);
    EXPECT_EQ(got_total, total);
  }
}
