// tests/test_materialize.cpp — the parallel materialization pipeline:
// merge_thread_vectors (parallel block-copy concat + keep/release capacity
// modes), the bulk SoA edge_list appends (append_bulk /
// from_thread_buffers), the parallelized sort_and_unique gather, the direct
// per-thread-buffers -> symmetric CSR builder, and the construction
// algorithms' equivalence when funneled through all of them.
#include <gtest/gtest.h>

#include <set>
#include <tuple>
#include <utility>
#include <vector>

#include "nwhy/gen/generators.hpp"
#include "nwhy/slinegraph/construction.hpp"
#include "test_util.hpp"

using namespace nw::hypergraph;
using nw::vertex_id_t;
using nwtest::canonical_pairs;

namespace {

using pair_t  = std::pair<vertex_id_t, vertex_id_t>;
using pairs_t = std::vector<pair_t>;

/// Deterministic unique unordered pairs: p -> (a = p / k, b = a + 1 + p % k).
pairs_t make_unique_pairs(std::size_t count, std::size_t k = 7) {
  pairs_t out;
  out.reserve(count);
  for (std::size_t p = 0; p < count; ++p) {
    auto a = static_cast<vertex_id_t>(p / k);
    auto b = static_cast<vertex_id_t>(a + 1 + p % k);
    out.push_back({a, b});
  }
  return out;
}

std::size_t pair_id_bound(const pairs_t& pairs) {
  std::size_t n = 0;
  for (auto [a, b] : pairs) n = std::max({n, std::size_t{a} + 1, std::size_t{b} + 1});
  return n;
}

/// Round-robin the pairs into per-thread buffers (deterministic split).
void scatter_to_buffers(const pairs_t& pairs, nw::par::per_thread<std::vector<pair_t>>& buffers) {
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    buffers.local(static_cast<unsigned>(i % buffers.size())).push_back(pairs[i]);
  }
}

/// Canonical sorted-unique {lo, hi} pairs of a symmetric CSR.
pairs_t canonical_csr_pairs(const nw::graph::adjacency<>& g) {
  pairs_t out;
  for (std::size_t u = 0; u < g.size(); ++u) {
    for (auto&& e : g[u]) {
      vertex_id_t v = target(e);
      if (u < v) out.push_back({static_cast<vertex_id_t>(u), v});
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// The legacy CSR pipeline the direct builder replaced.
nw::graph::adjacency<> legacy_csr(const pairs_t& pairs, std::size_t n) {
  nw::graph::edge_list<> el(n);
  for (auto [a, b] : pairs) el.push_back(a, b);
  el.symmetrize();
  el.sort_and_unique();
  return nw::graph::adjacency<>(el, n);
}

}  // namespace

// --- merge_thread_vectors ---------------------------------------------------

TEST(MergeThreadVectors, PreservesOrderAcrossBuffers) {
  nw::par::thread_pool                     pool(4);
  nw::par::per_thread<std::vector<int>>    buffers(pool);
  std::vector<int>                         expected;
  for (unsigned b = 0; b < buffers.size(); ++b) {
    for (int i = 0; i < 100 + static_cast<int>(b) * 37; ++i) {
      buffers.local(b).push_back(static_cast<int>(b) * 100000 + i);
    }
  }
  for (unsigned b = 0; b < buffers.size(); ++b) {
    for (auto x : buffers.local(b)) expected.push_back(x);
  }
  auto merged = nw::par::merge_thread_vectors(buffers, nw::par::merge_capacity::release, pool);
  EXPECT_EQ(merged, expected);
}

TEST(MergeThreadVectors, KeepModeRetainsCapacityReleaseDoesNot) {
  nw::par::thread_pool                  pool(2);
  nw::par::per_thread<std::vector<int>> buffers(pool);
  for (int i = 0; i < 5000; ++i) buffers.local(0).push_back(i);

  auto merged = nw::par::merge_thread_vectors(buffers, nw::par::merge_capacity::keep, pool);
  EXPECT_EQ(merged.size(), 5000u);
  EXPECT_TRUE(buffers.local(0).empty());
  EXPECT_GE(buffers.local(0).capacity(), 5000u);  // allocation recycled

  for (int i = 0; i < 100; ++i) buffers.local(0).push_back(i);
  merged = nw::par::merge_thread_vectors(buffers, nw::par::merge_capacity::release, pool);
  EXPECT_EQ(merged.size(), 100u);
  EXPECT_EQ(buffers.local(0).capacity(), 0u);  // released
}

TEST(MergeThreadVectors, EmptyBuffersYieldEmptyResult) {
  nw::par::thread_pool                  pool(4);
  nw::par::per_thread<std::vector<int>> buffers(pool);
  auto merged = nw::par::merge_thread_vectors(buffers, nw::par::merge_capacity::release, pool);
  EXPECT_TRUE(merged.empty());
}

TEST(MergeThreadVectors, OneGiantBufferIsChunkedAcrossThreads) {
  nw::par::thread_pool                  pool(4);
  nw::par::per_thread<std::vector<int>> buffers(pool);
  // Everything in one buffer: the chunk planner must still spread the copy.
  std::vector<int> expected(100000);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    expected[i] = static_cast<int>(i * 2654435761u);
    buffers.local(1).push_back(expected[i]);
  }
  auto merged = nw::par::merge_thread_vectors(buffers, nw::par::merge_capacity::release, pool);
  EXPECT_EQ(merged, expected);
}

TEST(MergeThreadVectors, SingleThreadPool) {
  nw::par::thread_pool                  pool(1);
  nw::par::per_thread<std::vector<int>> buffers(pool);
  ASSERT_EQ(buffers.size(), 1u);
  for (int i = 0; i < 1000; ++i) buffers.local(0).push_back(i);
  auto merged = nw::par::merge_thread_vectors(buffers, nw::par::merge_capacity::release, pool);
  ASSERT_EQ(merged.size(), 1000u);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(merged[static_cast<std::size_t>(i)], i);
}

// --- edge_list bulk append --------------------------------------------------

TEST(EdgeListBulk, AppendBulkMatchesPushBack) {
  auto pairs = make_unique_pairs(10000);

  nw::graph::edge_list<> ref(pair_id_bound(pairs));
  for (auto [a, b] : pairs) ref.push_back(a, b);

  nw::graph::edge_list<> bulk(pair_id_bound(pairs));
  bulk.append_bulk(pairs);
  // A second append lands after the first (append, not overwrite).
  bulk.append_bulk(std::span<const pair_t>(pairs.data(), 5));

  ASSERT_EQ(bulk.size(), ref.size() + 5);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(bulk.source(i), ref.source(i));
    EXPECT_EQ(bulk.destination(i), ref.destination(i));
  }
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(bulk.source(ref.size() + i), pairs[i].first);
    EXPECT_EQ(bulk.destination(ref.size() + i), pairs[i].second);
  }
}

TEST(EdgeListBulk, AppendBulkCarriesAttributeColumn) {
  using entry = nw::graph::edge_list<std::uint32_t>::value_type;
  std::vector<entry> items;
  for (std::uint32_t i = 0; i < 1000; ++i) items.push_back({i, i + 1, i * 3});

  nw::graph::edge_list<std::uint32_t> el(1001);
  el.append_bulk(items);
  ASSERT_EQ(el.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    auto [a, b, w] = el[i];
    EXPECT_EQ(a, std::get<0>(items[i]));
    EXPECT_EQ(b, std::get<1>(items[i]));
    EXPECT_EQ(w, std::get<2>(items[i]));
  }
}

TEST(EdgeListBulk, FromThreadBuffersMatchesSerialFunnel) {
  nw::par::thread_pool                     pool(4);
  nw::par::per_thread<std::vector<pair_t>> buffers(pool);
  auto pairs = make_unique_pairs(25000, 13);
  scatter_to_buffers(pairs, buffers);

  // Reference: the old serial funnel, buffer by buffer, element by element.
  nw::graph::edge_list<> ref(pair_id_bound(pairs));
  buffers.for_each([&](const std::vector<pair_t>& buf) {
    for (auto [a, b] : buf) ref.push_back(a, b);
  });

  auto el = nw::graph::edge_list<>::from_thread_buffers(buffers, pair_id_bound(pairs),
                                                        nw::par::merge_capacity::keep, pool);
  ASSERT_EQ(el.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(el.source(i), ref.source(i));
    EXPECT_EQ(el.destination(i), ref.destination(i));
  }
  EXPECT_EQ(el.num_vertices(), pair_id_bound(pairs));
  // keep mode: drained but allocation retained.
  buffers.for_each([&](const std::vector<pair_t>& buf) { EXPECT_TRUE(buf.empty()); });
  EXPECT_GT(buffers.local(0).capacity(), 0u);
}

TEST(EdgeListBulk, FromThreadBuffersEmpty) {
  nw::par::thread_pool                     pool(2);
  nw::par::per_thread<std::vector<pair_t>> buffers(pool);
  auto el = nw::graph::edge_list<>::from_thread_buffers(buffers, 10);
  EXPECT_TRUE(el.empty());
  EXPECT_EQ(el.num_vertices(), 10u);
}

// --- parallel sort_and_unique gather ---------------------------------------

TEST(SortAndUnique, ParallelGatherMatchesSetSemantics) {
  nw::xoshiro256ss       rng(0x5EED);
  nw::graph::edge_list<> el(64);
  std::set<pair_t>       expected;
  for (int i = 0; i < 20000; ++i) {
    auto a = static_cast<vertex_id_t>(rng.bounded(64));
    auto b = static_cast<vertex_id_t>(rng.bounded(64));
    el.push_back(a, b);
    expected.insert({a, b});
  }
  el.sort_and_unique();
  ASSERT_EQ(el.size(), expected.size());
  std::size_t i = 0;
  for (auto [a, b] : expected) {  // std::set iterates in sorted order
    EXPECT_EQ(el.source(i), a);
    EXPECT_EQ(el.destination(i), b);
    ++i;
  }
}

TEST(SortAndUnique, AttributesSurviveDeduplication) {
  // Duplicate (src, dst) pairs carry identical weights, so the "first
  // duplicate wins" rule must reproduce exactly this mapping.
  nw::graph::edge_list<std::uint32_t> el(32);
  std::map<pair_t, std::uint32_t>     expected;
  nw::xoshiro256ss                    rng(0xFACE);
  for (int i = 0; i < 5000; ++i) {
    auto a = static_cast<vertex_id_t>(rng.bounded(32));
    auto b = static_cast<vertex_id_t>(rng.bounded(32));
    auto w = static_cast<std::uint32_t>(a * 100 + b);  // pair-determined weight
    el.push_back(a, b, w);
    expected[{a, b}] = w;
  }
  el.sort_and_unique();
  ASSERT_EQ(el.size(), expected.size());
  for (std::size_t i = 0; i < el.size(); ++i) {
    auto [a, b, w] = el[i];
    EXPECT_EQ(w, expected.at({a, b}));
  }
}

// --- direct per-thread-buffers -> CSR builder -------------------------------

TEST(CsrFromBuffers, MatchesLegacyRoundtrip) {
  nw::par::thread_pool                     pool(4);
  nw::par::per_thread<std::vector<pair_t>> buffers(pool);
  auto        pairs = make_unique_pairs(30000, 11);
  std::size_t n     = pair_id_bound(pairs);
  scatter_to_buffers(pairs, buffers);

  auto direct = nw::graph::adjacency<>::from_unique_undirected_pairs(
      buffers, n, nw::par::merge_capacity::keep, pool);
  auto legacy = legacy_csr(pairs, n);

  ASSERT_EQ(direct.size(), legacy.size());
  ASSERT_EQ(direct.num_edges(), legacy.num_edges());
  for (std::size_t u = 0; u < n; ++u) {
    std::vector<vertex_id_t> a, b;
    for (auto&& e : direct[u]) a.push_back(target(e));
    for (auto&& e : legacy[u]) b.push_back(target(e));
    ASSERT_EQ(a, b) << "row " << u;
  }
}

TEST(CsrFromBuffers, RowsAreSorted) {
  nw::par::thread_pool                     pool(4);
  nw::par::per_thread<std::vector<pair_t>> buffers(pool);
  auto        pairs = make_unique_pairs(5000, 17);
  std::size_t n     = pair_id_bound(pairs);
  scatter_to_buffers(pairs, buffers);
  auto csr = nw::graph::adjacency<>::from_unique_undirected_pairs(buffers, n);
  for (std::size_t u = 0; u < n; ++u) {
    vertex_id_t prev = 0;
    bool        any  = false;
    for (auto&& e : csr[u]) {
      vertex_id_t v = target(e);
      if (any) EXPECT_LT(prev, v) << "row " << u;
      prev = v;
      any  = true;
    }
  }
}

TEST(CsrFromBuffers, EmptyInputGivesEmptyRows) {
  nw::par::thread_pool                     pool(2);
  nw::par::per_thread<std::vector<pair_t>> buffers(pool);
  auto csr = nw::graph::adjacency<>::from_unique_undirected_pairs(buffers, 8);
  EXPECT_EQ(csr.size(), 8u);
  EXPECT_EQ(csr.num_edges(), 0u);
  for (std::size_t u = 0; u < 8; ++u) {
    EXPECT_EQ(std::distance(csr[u].begin(), csr[u].end()), 0);
  }
}

TEST(CsrFromBuffers, SingleThreadPool) {
  nw::par::thread_pool                     pool(1);
  nw::par::per_thread<std::vector<pair_t>> buffers(pool);
  auto        pairs = make_unique_pairs(2000);
  std::size_t n     = pair_id_bound(pairs);
  scatter_to_buffers(pairs, buffers);
  auto direct = nw::graph::adjacency<>::from_unique_undirected_pairs(buffers, n);
  EXPECT_EQ(canonical_csr_pairs(direct),
            canonical_csr_pairs(legacy_csr(pairs, n)));
}

// --- construction algorithms through the bulk path --------------------------

namespace {

struct fixture {
  biedgelist<>             el;
  biadjacency<0>           hyperedges;
  biadjacency<1>           hypernodes;
  std::vector<std::size_t> degrees;

  explicit fixture(biedgelist<> input) {
    input.sort_and_unique();
    el         = std::move(input);
    hyperedges = biadjacency<0>(el);
    hypernodes = biadjacency<1>(el);
    degrees    = hyperedges.degrees();
  }
};

}  // namespace

TEST(MaterializedConstruction, AllAlgorithmsMatchNaive) {
  fixture f(gen::powerlaw_hypergraph(400, 150, 24, 1.5, 0.9, 0xBEEF01));
  auto    queue = detail::iota_queue(f.hyperedges.size());
  for (std::size_t s : {std::size_t{1}, std::size_t{2}, std::size_t{3}}) {
    auto truth = canonical_pairs(to_two_graph_naive(f.hyperedges, f.hypernodes, f.degrees, s));
    EXPECT_EQ(truth,
              canonical_pairs(to_two_graph_hashmap(f.hyperedges, f.hypernodes, f.degrees, s)));
    EXPECT_EQ(truth, canonical_pairs(to_two_graph_intersection(f.hyperedges, f.hypernodes,
                                                               f.degrees, s)));
    EXPECT_EQ(truth, canonical_pairs(to_two_graph_queue_hashmap(queue, f.hyperedges,
                                                                f.hypernodes, f.degrees, s,
                                                                f.hyperedges.size())));
    EXPECT_EQ(truth, canonical_pairs(to_two_graph_queue_intersection(queue, f.hyperedges,
                                                                     f.hypernodes, f.degrees, s,
                                                                     f.hyperedges.size())));
    EXPECT_EQ(truth, canonical_pairs(to_two_graph_neighbor_range(f.hyperedges, f.hypernodes,
                                                                 f.degrees, s)));
    auto ensemble = to_two_graph_ensemble(f.hyperedges, f.hypernodes, f.degrees, {s});
    ASSERT_EQ(ensemble.size(), 1u);
    EXPECT_EQ(truth, canonical_pairs(ensemble[0]));
    // Direct CSR pipeline: same edge set read back off the symmetric CSR.
    EXPECT_EQ(truth, canonical_csr_pairs(
                         to_two_graph_hashmap_csr(f.hyperedges, f.hypernodes, f.degrees, s)));
  }
}

TEST(MaterializedConstruction, EnsembleMultipleSValues) {
  fixture f(gen::powerlaw_hypergraph(300, 100, 16, 1.4, 0.8, 0xBEEF02));
  auto    ensemble = to_two_graph_ensemble(f.hyperedges, f.hypernodes, f.degrees, {1, 2, 4});
  ASSERT_EQ(ensemble.size(), 3u);
  std::size_t svals[] = {1, 2, 4};
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(canonical_pairs(ensemble[i]),
              canonical_pairs(
                  to_two_graph_naive(f.hyperedges, f.hypernodes, f.degrees, svals[i])));
  }
}

TEST(MaterializedConstruction, ScratchBuffersReusedAcrossCalls) {
  // Repeated construction through the process-wide scratch must be
  // idempotent: same result every time, no leftover pairs from prior calls.
  fixture f(gen::uniform_random_hypergraph(500, 300, 6, 0xBEEF03));
  auto    first = canonical_csr_pairs(
      to_two_graph_hashmap_csr(f.hyperedges, f.hypernodes, f.degrees, 2));
  for (int round = 0; round < 3; ++round) {
    EXPECT_EQ(first, canonical_csr_pairs(
                         to_two_graph_hashmap_csr(f.hyperedges, f.hypernodes, f.degrees, 2)));
    EXPECT_EQ(first, canonical_pairs(
                         to_two_graph_hashmap(f.hyperedges, f.hypernodes, f.degrees, 2)));
  }
}

TEST(MaterializedConstruction, SingleThreadDefaultPoolEquivalence) {
  fixture  f(gen::powerlaw_hypergraph(250, 90, 16, 1.5, 0.9, 0xBEEF04));
  auto     expected = canonical_pairs(to_two_graph_naive(f.hyperedges, f.hypernodes, f.degrees, 2));
  unsigned restore  = nw::par::num_threads();
  nw::par::thread_pool::set_default_concurrency(1);
  auto got_el  = canonical_pairs(to_two_graph_hashmap(f.hyperedges, f.hypernodes, f.degrees, 2));
  auto got_csr = canonical_csr_pairs(
      to_two_graph_hashmap_csr(f.hyperedges, f.hypernodes, f.degrees, 2));
  nw::par::thread_pool::set_default_concurrency(restore);
  EXPECT_EQ(got_el, expected);
  EXPECT_EQ(got_csr, expected);
}

TEST(MaterializedConstruction, CliqueExpansionCsrMatchesEdgeListVariant) {
  fixture f(nwtest::figure1_hypergraph());
  auto    node_degrees = f.hypernodes.degrees();
  EXPECT_EQ(canonical_csr_pairs(clique_expansion_csr(f.hypernodes, f.hyperedges, node_degrees)),
            canonical_pairs(clique_expansion(f.hypernodes, f.hyperedges, node_degrees)));
}

// --- iota_queue helpers -----------------------------------------------------

TEST(IotaQueue, VectorAndSpanOverloads) {
  auto q = detail::iota_queue(5);
  EXPECT_EQ(q, (std::vector<vertex_id_t>{0, 1, 2, 3, 4}));

  std::vector<vertex_id_t> buf(4);
  detail::iota_queue(buf);
  EXPECT_EQ(buf, (std::vector<vertex_id_t>{0, 1, 2, 3}));
  detail::iota_queue(buf, 10);
  EXPECT_EQ(buf, (std::vector<vertex_id_t>{10, 11, 12, 13}));
}
