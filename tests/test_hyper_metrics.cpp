// tests/test_hyper_metrics.cpp — exact hypergraph PageRank and (k, l)-core
// decomposition on the bipartite representation.
#include <gtest/gtest.h>

#include <set>

#include "nwhy/algorithms/hyper_kcore.hpp"
#include "nwhy/algorithms/hyper_pagerank.hpp"
#include "nwhy/nwhypergraph.hpp"
#include "test_util.hpp"

using namespace nw::hypergraph;
using nw::vertex_id_t;

namespace {

struct fixture {
  biadjacency<0> hyperedges;
  biadjacency<1> hypernodes;

  explicit fixture(biedgelist<> el) {
    el.sort_and_unique();
    hyperedges = biadjacency<0>(el);
    hypernodes = biadjacency<1>(el);
  }
};

}  // namespace

// --- hypergraph PageRank -----------------------------------------------------------

TEST(HyperPagerank, NodeRanksSumToOne) {
  fixture f(gen::powerlaw_hypergraph(100, 80, 20, 1.5, 1.0, 1));
  auto    r   = hyper_pagerank(f.hyperedges, f.hypernodes);
  double  sum = 0;
  for (auto x : r.rank_node) sum += x;
  EXPECT_NEAR(sum, 1.0, 1e-6);
  EXPECT_GT(r.iterations, 0u);
}

TEST(HyperPagerank, SymmetricStructureIsUniform) {
  // A cycle of hyperedges: e_i = {v_i, v_{i+1}} — every node equivalent.
  biedgelist<> el;
  for (vertex_id_t e = 0; e < 8; ++e) {
    el.push_back(e, e);
    el.push_back(e, (e + 1) % 8);
  }
  fixture f(std::move(el));
  auto    r = hyper_pagerank(f.hyperedges, f.hypernodes);
  for (auto x : r.rank_node) EXPECT_NEAR(x, 1.0 / 8.0, 1e-8);
}

TEST(HyperPagerank, HubNodeOutranksLeaves) {
  // Star of hyperedges all containing v0: e_i = {v0, v_i}.
  biedgelist<> el;
  for (vertex_id_t e = 0; e < 10; ++e) {
    el.push_back(e, 0);
    el.push_back(e, e + 1);
  }
  fixture f(std::move(el));
  auto    r = hyper_pagerank(f.hyperedges, f.hypernodes);
  for (std::size_t v = 1; v < r.rank_node.size(); ++v) {
    EXPECT_GT(r.rank_node[0], r.rank_node[v]);
    EXPECT_NEAR(r.rank_node[1], r.rank_node[v], 1e-10);  // leaves symmetric
  }
  // Hyperedge ranks are symmetric too.
  for (std::size_t e = 1; e < r.rank_edge.size(); ++e) {
    EXPECT_NEAR(r.rank_edge[0], r.rank_edge[e], 1e-10);
  }
}

TEST(HyperPagerank, IsolatedNodesKeepTeleportMass) {
  biedgelist<> el(1, 4);  // v2, v3 isolated
  el.push_back(0, 0);
  el.push_back(0, 1);
  fixture f(std::move(el));
  auto    r = hyper_pagerank(f.hyperedges, f.hypernodes);
  double  sum = 0;
  for (auto x : r.rank_node) sum += x;
  EXPECT_NEAR(sum, 1.0, 1e-6);
  EXPECT_GT(r.rank_node[2], 0.0);
  EXPECT_NEAR(r.rank_node[2], r.rank_node[3], 1e-12);
}

TEST(HyperPagerank, AgreesWithAdjoinGraphPagerank) {
  // The surfer model equals PageRank on the adjoin graph; node ranks must
  // match the adjoin ranks restricted to the node class, renormalized.
  auto el = gen::uniform_random_hypergraph(40, 50, 4, 5);
  el.sort_and_unique();
  fixture f(el);
  auto    exact  = hyper_pagerank(f.hyperedges, f.hypernodes, 0.85, 1e-13, 500);
  auto    adjoin = make_adjoin_graph(el);
  auto    full   = nw::graph::pagerank(adjoin.graph, 0.85, 1e-13, 500);
  auto [edge_part, node_part] = split_results(full, adjoin.nrealedges);
  double  a = 0, b = 0;
  for (auto x : node_part) a += x;
  for (auto x : exact.rank_node) b += x;
  // Compare shapes (rank ratios), not scales: the teleport models differ
  // (adjoin teleports to both classes).  Rank ordering must agree.
  std::vector<std::size_t> order_a(node_part.size()), order_b(node_part.size());
  for (std::size_t i = 0; i < order_a.size(); ++i) order_a[i] = order_b[i] = i;
  std::sort(order_a.begin(), order_a.end(),
            [&](std::size_t x, std::size_t y) { return node_part[x] > node_part[y]; });
  std::sort(order_b.begin(), order_b.end(), [&](std::size_t x, std::size_t y) {
    return exact.rank_node[x] > exact.rank_node[y];
  });
  // The teleport models differ slightly (the adjoin surfer can teleport to
  // a hyperedge id), so demand the top vertex and near-total top-5 set
  // agreement rather than exact ordering.
  EXPECT_EQ(order_a[0], order_b[0]) << "top-ranked hypernode";
  std::set<std::size_t> top_a(order_a.begin(), order_a.begin() + 5);
  std::set<std::size_t> top_b(order_b.begin(), order_b.begin() + 5);
  std::vector<std::size_t> common;
  std::set_intersection(top_a.begin(), top_a.end(), top_b.begin(), top_b.end(),
                        std::back_inserter(common));
  EXPECT_GE(common.size(), 4u);
}

// --- (k, l)-core ----------------------------------------------------------------------

TEST(KlCore, FullHypergraphSurvivesTrivialThresholds) {
  fixture f(nwtest::figure1_hypergraph());
  auto    r = kl_core(f.hyperedges, f.hypernodes, 1, 1);
  EXPECT_EQ(count_alive(r.edge_alive), 4u);
  EXPECT_EQ(count_alive(r.node_alive), 9u);
}

TEST(KlCore, Figure1PeelsToEmptyAtK2L3) {
  // Fig. 1: requiring every node in >= 2 edges and every edge >= 3 nodes
  // unravels everything (v0, v3, v5, v7, v8 have degree 1).
  fixture f(nwtest::figure1_hypergraph());
  auto    r = kl_core(f.hyperedges, f.hypernodes, 2, 3);
  EXPECT_EQ(count_alive(r.edge_alive), 0u);
  EXPECT_EQ(count_alive(r.node_alive), 0u);
  EXPECT_GT(r.rounds, 1u);  // cascading peel, not a single pass
}

TEST(KlCore, DenseCoreSurvivesSparseFringe) {
  // Core: 4 hyperedges over the same 4 nodes (complete-ish); fringe: a
  // chain of degree-1 attachments.
  biedgelist<> el;
  for (vertex_id_t e = 0; e < 4; ++e) {
    for (vertex_id_t v = 0; v < 4; ++v) el.push_back(e, v);
  }
  el.push_back(4, 3);  // fringe edge {v3, v10}
  el.push_back(4, 10);
  fixture f(std::move(el));
  auto    r = kl_core(f.hyperedges, f.hypernodes, 2, 3);
  EXPECT_EQ(count_alive(r.edge_alive), 4u);  // fringe edge peeled (size 2 < 3)
  EXPECT_FALSE(r.edge_alive[4]);
  EXPECT_EQ(count_alive(r.node_alive), 4u);  // v10 peeled
  EXPECT_FALSE(r.node_alive[10]);
  for (vertex_id_t v = 0; v < 4; ++v) EXPECT_TRUE(r.node_alive[v]);
}

TEST(KlCore, MonotoneInKAndL) {
  fixture f(gen::planted_community_hypergraph(60, 150, 20, 1.4, 0.3, 9));
  auto    base = kl_core(f.hyperedges, f.hypernodes, 2, 2);
  auto    harder_k = kl_core(f.hyperedges, f.hypernodes, 3, 2);
  auto    harder_l = kl_core(f.hyperedges, f.hypernodes, 2, 3);
  EXPECT_LE(count_alive(harder_k.node_alive), count_alive(base.node_alive));
  EXPECT_LE(count_alive(harder_k.edge_alive), count_alive(base.edge_alive));
  EXPECT_LE(count_alive(harder_l.node_alive), count_alive(base.node_alive));
  EXPECT_LE(count_alive(harder_l.edge_alive), count_alive(base.edge_alive));
  // Survivors genuinely satisfy the invariant.
  auto check_invariant = [&](const kl_core_result& r, std::size_t k, std::size_t l) {
    for (std::size_t e = 0; e < f.hyperedges.size(); ++e) {
      if (!r.edge_alive[e]) continue;
      std::size_t members = 0;
      for (auto&& ev : f.hyperedges[e]) members += r.node_alive[target(ev)];
      EXPECT_GE(members, l) << "edge " << e;
    }
    for (std::size_t v = 0; v < f.hypernodes.size(); ++v) {
      if (!r.node_alive[v]) continue;
      std::size_t memberships = 0;
      for (auto&& ve : f.hypernodes[v]) memberships += r.edge_alive[target(ve)];
      EXPECT_GE(memberships, k) << "node " << v;
    }
  };
  check_invariant(base, 2, 2);
  check_invariant(harder_k, 3, 2);
  check_invariant(harder_l, 2, 3);
}

TEST(KlCore, MaximalityOnUniformInput) {
  // Every peeled entity must have been below threshold at some point: the
  // survivors form the *maximal* such sub-hypergraph, so re-running on the
  // survivor structure changes nothing.
  auto el = gen::uniform_random_hypergraph(80, 60, 4, 11);
  el.sort_and_unique();
  fixture f(el);
  auto    r = kl_core(f.hyperedges, f.hypernodes, 2, 2);

  // Build the survivor hypergraph and re-peel.
  biedgelist<> survivor(f.hyperedges.size(), f.hypernodes.size());
  for (std::size_t i = 0; i < el.size(); ++i) {
    auto [e, v] = el[i];
    if (r.edge_alive[e] && r.node_alive[v]) survivor.push_back(e, v);
  }
  fixture g(std::move(survivor));  // same declared cardinalities as f
  auto    again = kl_core(g.hyperedges, g.hypernodes, 2, 2);
  EXPECT_EQ(count_alive(again.edge_alive), count_alive(r.edge_alive));
  EXPECT_EQ(count_alive(again.node_alive), count_alive(r.node_alive));
  for (std::size_t e = 0; e < f.hyperedges.size(); ++e) {
    if (r.edge_alive[e]) {
      EXPECT_TRUE(again.edge_alive[e]) << e;
    }
  }
}