// tests/test_io_snapshot.cpp — NWHYCSR2 CSR snapshots: mmap zero-copy and
// streamed round-trips, corruption/truncation rejection, and adoption into
// NWHypergraph.
//
// The round-trip property runs over the differential seed stream
// (NWHY_TEST_SEED / NWHY_TEST_ITERS, see prop_harness.hpp) and the
// {1, 2, 4, hw} thread sweep: write -> mmap-read -> bit-exact CSR equality
// must hold at every thread count, because the parallel pieces (biedgelist
// re-expansion, degree computation) must not depend on scheduling.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "nwhy/gen/generators.hpp"
#include "nwhy/io/csr_snapshot.hpp"
#include "nwhy/io/io_error.hpp"
#include "nwhy/nwhypergraph.hpp"
#include "nwhy/validate.hpp"
#include "prop_harness.hpp"
#include "test_util.hpp"

using namespace nw::hypergraph;
using nw::vertex_id_t;

namespace {

/// A unique scratch path per test, removed on destruction.
struct scratch_file {
  std::string path;
  explicit scratch_file(const std::string& tag) {
    static int counter = 0;
    path = (std::filesystem::temp_directory_path() /
            ("nwhy_snap_" + tag + "_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter++) + ".nwcsr"))
               .string();
  }
  ~scratch_file() {
    std::error_code ec;
    std::filesystem::remove(path, ec);
  }
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream s;
  s << in.rdbuf();
  return s.str();
}

void dump(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

template <class A, class B>
void expect_same_csr(const A& a, const B& b) {
  auto ai = a.indices();
  auto bi = b.indices();
  auto at = a.targets();
  auto bt = b.targets();
  ASSERT_EQ(ai.size(), bi.size());
  ASSERT_EQ(at.size(), bt.size());
  for (std::size_t i = 0; i < ai.size(); ++i) ASSERT_EQ(ai[i], bi[i]) << "offset row " << i;
  for (std::size_t i = 0; i < at.size(); ++i) ASSERT_EQ(at[i], bt[i]) << "target slot " << i;
}

/// Recompute and patch the header checksum after a deliberate header/table
/// mutation, so a test can reach past the checksum to the semantic check
/// behind it (e.g. version rejection).
void refresh_header_checksum(std::string& bytes) {
  namespace d = csr_detail;
  auto* p     = reinterpret_cast<unsigned char*>(bytes.data());
  const std::uint32_t count     = d::get_u32(p + 40);
  const std::size_t   table_end = d::header_bytes + std::size_t{count} * d::table_entry_bytes;
  std::uint64_t       h         = d::fnv1a64(p, d::checksummed_header);
  h = d::fnv1a64(p + d::header_bytes, table_end - d::header_bytes, h);
  d::put_u64(p + 56, h);
}

}  // namespace

TEST(CsrSnapshot, MmapRoundTripIsBitExactAcrossSeedsAndThreads) {
  nwtest::concurrency_guard guard;
  for (auto seed : nwtest::differential_seeds(0x5A90)) {
    NWHY_SEED_TRACE(seed);
    NWHypergraph hg(gen::arbitrary_hypergraph(seed));
    scratch_file f("roundtrip");
    hg.save_csr_snapshot(f.path);
    for (unsigned threads : nwtest::differential_thread_counts()) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      nw::par::thread_pool::set_default_concurrency(threads);
      auto snap = load_csr_snapshot(f.path, /*verify_checksums=*/true);
      EXPECT_TRUE(snap.canonical());
      EXPECT_EQ(snap.n0, hg.num_hyperedges());
      EXPECT_EQ(snap.n1, hg.num_hypernodes());
      EXPECT_EQ(snap.m, hg.num_incidences());
      expect_same_csr(snap.edges.csr(), hg.hyperedges().csr());
      expect_same_csr(snap.nodes.csr(), hg.hypernodes().csr());
      // Re-expanded incidence list == the canonical edge list.
      auto el = snap.to_biedgelist();
      ASSERT_EQ(el.size(), hg.edge_list().size());
      for (std::size_t i = 0; i < el.size(); ++i) ASSERT_EQ(el[i], hg.edge_list()[i]);
      // The CSR pair must still be exact mutual transposes.
      auto cons = validate_csr_pair(snap.edges, snap.nodes);
      EXPECT_TRUE(cons.consistent()) << cons.to_string();
    }
  }
}

TEST(CsrSnapshot, StreamAndMmapReadersAgree) {
  NWHypergraph hg(gen::arbitrary_hypergraph(0xCAFE));
  scratch_file f("stream");
  hg.save_csr_snapshot(f.path);
#if NWHY_HAS_MMAP
  auto mapped = map_csr_snapshot(f.path, /*verify_checksums=*/true);
  EXPECT_TRUE(mapped.zero_copy());
  EXPECT_TRUE(mapped.edges.csr().is_external());
#endif
  std::ifstream in(f.path, std::ios::binary);
  auto          streamed = read_csr_snapshot(in, f.path);
  EXPECT_FALSE(streamed.zero_copy());
  EXPECT_FALSE(streamed.edges.csr().is_external());
#if NWHY_HAS_MMAP
  expect_same_csr(mapped.edges.csr(), streamed.edges.csr());
  expect_same_csr(mapped.nodes.csr(), streamed.nodes.csr());
#endif
  expect_same_csr(streamed.edges.csr(), hg.hyperedges().csr());
}

TEST(CsrSnapshot, PipeStyleStringStreamRoundTrip) {
  NWHypergraph       hg(nwtest::figure1_hypergraph());
  std::ostringstream out(std::ios::binary);
  write_csr_snapshot(out, hg.hyperedges(), hg.hypernodes());
  std::istringstream in(out.str(), std::ios::binary);
  auto               snap = read_csr_snapshot(in);
  expect_same_csr(snap.edges.csr(), hg.hyperedges().csr());
  expect_same_csr(snap.nodes.csr(), hg.hypernodes().csr());
}

TEST(CsrSnapshot, AdjoinSectionRoundTrips) {
  NWHypergraph hg(gen::arbitrary_hypergraph(0xADA0));
  scratch_file f("adjoin");
  hg.save_csr_snapshot(f.path, /*with_adjoin=*/true);
  auto snap = load_csr_snapshot(f.path, /*verify_checksums=*/true);
  ASSERT_TRUE(snap.adjoin.has_value());
  EXPECT_EQ(snap.adjoin->nrealedges, hg.num_hyperedges());
  EXPECT_EQ(snap.adjoin->nrealnodes, hg.num_hypernodes());
  expect_same_csr(snap.adjoin->graph, hg.adjoin().graph);
  // Adoption installs the cached adjoin without a rebuild.
  NWHypergraph loaded(std::move(snap));
  expect_same_csr(loaded.adjoin().graph, hg.adjoin().graph);
}

TEST(CsrSnapshot, NWHypergraphAdoptionPreservesAlgorithms) {
  NWHypergraph hg(gen::arbitrary_hypergraph(0xBF5));
  scratch_file f("adopt");
  hg.save_csr_snapshot(f.path);
  NWHypergraph loaded(load_csr_snapshot(f.path));
  EXPECT_EQ(loaded.num_hyperedges(), hg.num_hyperedges());
  EXPECT_EQ(loaded.num_hypernodes(), hg.num_hypernodes());
  EXPECT_EQ(loaded.num_incidences(), hg.num_incidences());
  EXPECT_EQ(loaded.edge_sizes(), hg.edge_sizes());
  EXPECT_EQ(loaded.node_degrees(), hg.node_degrees());
  auto cc1 = hg.connected_components();
  auto cc2 = loaded.connected_components();
  EXPECT_TRUE(nwtest::same_partition(cc1.labels_edge, cc2.labels_edge));
  EXPECT_TRUE(nwtest::same_partition(cc1.labels_node, cc2.labels_node));
  if (hg.num_hyperedges() > 0) {
    auto b1 = hg.bfs(0);
    auto b2 = loaded.bfs(0);
    EXPECT_EQ(b1.dist_edge, b2.dist_edge);
    EXPECT_EQ(b1.dist_node, b2.dist_node);
  }
}

TEST(CsrSnapshot, EmptyHypergraphRoundTrips) {
  NWHypergraph hg(biedgelist<>(5, 7));
  scratch_file f("empty");
  hg.save_csr_snapshot(f.path);
  auto snap = load_csr_snapshot(f.path, /*verify_checksums=*/true);
  EXPECT_EQ(snap.n0, 5u);
  EXPECT_EQ(snap.n1, 7u);
  EXPECT_EQ(snap.m, 0u);
  EXPECT_EQ(snap.edges.num_edges(), 0u);
  auto el = snap.to_biedgelist();
  EXPECT_EQ(el.size(), 0u);
  EXPECT_EQ(el.num_vertices(0), 5u);
  EXPECT_EQ(el.num_vertices(1), 7u);
}

TEST(CsrSnapshot, NonCanonicalSnapshotTriggersRebuild) {
  NWHypergraph hg(gen::arbitrary_hypergraph(0xDEC0));
  scratch_file f("noncanon");
  write_csr_snapshot(f.path, hg.hyperedges(), hg.hypernodes(), nullptr, /*canonical=*/false);
  auto snap = load_csr_snapshot(f.path);
  EXPECT_FALSE(snap.canonical());
  NWHypergraph rebuilt(std::move(snap));  // falls back to sort_and_unique + rebuild
  expect_same_csr(rebuilt.hyperedges().csr(), hg.hyperedges().csr());
}

// --- rejection paths --------------------------------------------------------

TEST(CsrSnapshot, RejectsBadMagic) {
  scratch_file f("badmagic");
  dump(f.path, "NOTNWHY2 plus whatever follows, padded well past sixty-four bytes......");
  EXPECT_THROW(
      {
        try {
          load_csr_snapshot(f.path);
        } catch (const io_error& e) {
          EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos);
          throw;
        }
      },
      io_error);
  std::istringstream in("NOTNWHY2 short", std::ios::binary);
  EXPECT_THROW(read_csr_snapshot(in), io_error);
}

TEST(CsrSnapshot, RejectsTruncationAtEveryLayer) {
  NWHypergraph hg(nwtest::figure1_hypergraph());
  scratch_file f("trunc");
  hg.save_csr_snapshot(f.path);
  auto bytes = slurp(f.path);
  ASSERT_GT(bytes.size(), 128u);
  // Chop inside: header, section table, first payload, last payload.
  for (std::size_t keep : {std::size_t{10}, std::size_t{70}, std::size_t{200},
                           bytes.size() - 3}) {
    SCOPED_TRACE("keep=" + std::to_string(keep));
    scratch_file cut("trunc_cut");
    dump(cut.path, bytes.substr(0, keep));
    EXPECT_THROW(load_csr_snapshot(cut.path), io_error);
    std::istringstream in(bytes.substr(0, keep), std::ios::binary);
    EXPECT_THROW(read_csr_snapshot(in), io_error);
  }
}

TEST(CsrSnapshot, RejectsHeaderCorruption) {
  NWHypergraph hg(nwtest::figure1_hypergraph());
  scratch_file f("hdrcorrupt");
  hg.save_csr_snapshot(f.path);
  auto bytes = slurp(f.path);
  bytes[17] ^= 0x40;  // flip a bit inside n0
  scratch_file bad("hdrcorrupt_bad");
  dump(bad.path, bytes);
  EXPECT_THROW(
      {
        try {
          load_csr_snapshot(bad.path);
        } catch (const io_error& e) {
          EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos);
          throw;
        }
      },
      io_error);
}

TEST(CsrSnapshot, RejectsPayloadCorruption) {
  NWHypergraph hg(gen::arbitrary_hypergraph(0xC0DE));
  scratch_file f("paycorrupt");
  hg.save_csr_snapshot(f.path);
  auto bytes = slurp(f.path);
  bytes[bytes.size() - 1] ^= 0x01;  // flip a bit in the last payload
  // The streamed reader always verifies checksums...
  std::istringstream in(bytes, std::ios::binary);
  EXPECT_THROW(read_csr_snapshot(in), io_error);
  scratch_file bad("paycorrupt_bad");
  dump(bad.path, bytes);
  // ...the mmap loader only when asked (zero-copy loads stay O(page faults)).
  EXPECT_THROW(load_csr_snapshot(bad.path, /*verify_checksums=*/true), io_error);
}

TEST(CsrSnapshot, RejectsUnsupportedVersion) {
  NWHypergraph hg(nwtest::figure1_hypergraph());
  scratch_file f("version");
  hg.save_csr_snapshot(f.path);
  auto bytes = slurp(f.path);
  csr_detail::put_u32(reinterpret_cast<unsigned char*>(bytes.data()) + 8, 99);
  refresh_header_checksum(bytes);
  scratch_file bad("version_bad");
  dump(bad.path, bytes);
  EXPECT_THROW(
      {
        try {
          load_csr_snapshot(bad.path);
        } catch (const io_error& e) {
          EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
          throw;
        }
      },
      io_error);
}

TEST(CsrSnapshot, RejectsOutOfBoundsSection) {
  NWHypergraph hg(nwtest::figure1_hypergraph());
  scratch_file f("oob");
  hg.save_csr_snapshot(f.path);
  auto bytes = slurp(f.path);
  // Push the first section's offset past the declared file size.
  namespace d = csr_detail;
  auto* entry = reinterpret_cast<unsigned char*>(bytes.data()) + d::header_bytes;
  d::put_u64(entry + 8, 1u << 30);
  refresh_header_checksum(bytes);
  scratch_file bad("oob_bad");
  dump(bad.path, bytes);
  EXPECT_THROW(
      {
        try {
          load_csr_snapshot(bad.path);
        } catch (const io_error& e) {
          EXPECT_NE(std::string(e.what()).find("bounds"), std::string::npos);
          throw;
        }
      },
      io_error);
}

TEST(CsrSnapshot, CopyOfMmapViewIsOwningDeepCopy) {
#if NWHY_HAS_MMAP
  NWHypergraph hg(gen::arbitrary_hypergraph(0xD33D));
  scratch_file f("deepcopy");
  hg.save_csr_snapshot(f.path);
  nw::graph::adjacency<> copy;
  {
    auto snap = map_csr_snapshot(f.path);
    ASSERT_TRUE(snap.edges.csr().is_external());
    copy = snap.edges.csr();  // deep copy into owned storage
    EXPECT_FALSE(copy.is_external());
  }  // snapshot + mapping destroyed here
  // The copy must survive the unmap.
  expect_same_csr(copy, hg.hyperedges().csr());
#else
  GTEST_SKIP() << "no mmap on this platform";
#endif
}
