// tests/test_io_snapshot.cpp — NWHYCSR2 CSR snapshots: mmap zero-copy and
// streamed round-trips, corruption/truncation rejection, and adoption into
// NWHypergraph.
//
// The round-trip property runs over the differential seed stream
// (NWHY_TEST_SEED / NWHY_TEST_ITERS, see prop_harness.hpp) and the
// {1, 2, 4, hw} thread sweep: write -> mmap-read -> bit-exact CSR equality
// must hold at every thread count, because the parallel pieces (biedgelist
// re-expansion, degree computation) must not depend on scheduling.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif
#include <fstream>
#include <numeric>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "nwhy/gen/generators.hpp"
#include "nwhy/io/csr_snapshot.hpp"
#include "nwhy/io/io_error.hpp"
#include "nwhy/nwhypergraph.hpp"
#include "nwhy/validate.hpp"
#include "prop_harness.hpp"
#include "test_util.hpp"

using namespace nw::hypergraph;
using nw::vertex_id_t;

namespace {

/// A unique scratch path per test, removed on destruction.
struct scratch_file {
  std::string path;
  explicit scratch_file(const std::string& tag) {
    static int counter = 0;
    path = (std::filesystem::temp_directory_path() /
            ("nwhy_snap_" + tag + "_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter++) + ".nwcsr"))
               .string();
  }
  ~scratch_file() {
    std::error_code ec;
    std::filesystem::remove(path, ec);
  }
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream s;
  s << in.rdbuf();
  return s.str();
}

void dump(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

template <class A, class B>
void expect_same_csr(const A& a, const B& b) {
  auto ai = a.indices();
  auto bi = b.indices();
  auto at = a.targets();
  auto bt = b.targets();
  ASSERT_EQ(ai.size(), bi.size());
  ASSERT_EQ(at.size(), bt.size());
  for (std::size_t i = 0; i < ai.size(); ++i) ASSERT_EQ(ai[i], bi[i]) << "offset row " << i;
  for (std::size_t i = 0; i < at.size(); ++i) ASSERT_EQ(at[i], bt[i]) << "target slot " << i;
}

/// Recompute and patch the header checksum after a deliberate header/table
/// mutation, so a test can reach past the checksum to the semantic check
/// behind it (e.g. version rejection).
void refresh_header_checksum(std::string& bytes) {
  namespace d = csr_detail;
  auto* p     = reinterpret_cast<unsigned char*>(bytes.data());
  const std::uint32_t count     = d::get_u32(p + 40);
  const std::size_t   table_end = d::header_bytes + std::size_t{count} * d::table_entry_bytes;
  std::uint64_t       h         = d::fnv1a64(p, d::checksummed_header);
  h = d::fnv1a64(p + d::header_bytes, table_end - d::header_bytes, h);
  d::put_u64(p + 56, h);
}

/// Recompute section `sec`'s payload checksum (after a deliberate payload
/// mutation) and then the header checksum, producing a file whose checksums
/// all verify — exactly what a *crafted* (rather than bit-rotted) snapshot
/// looks like, which is why structural validation cannot lean on checksums.
void refresh_section_checksum(std::string& bytes, std::size_t sec) {
  namespace d = csr_detail;
  auto* p     = reinterpret_cast<unsigned char*>(bytes.data());
  auto* e     = p + d::header_bytes + sec * d::table_entry_bytes;
  const std::uint64_t off = d::get_u64(e + 8);
  const std::uint64_t len = d::get_u64(e + 16);
  d::put_u64(e + 24, d::fnv1a64(p + off, len));
  refresh_header_checksum(bytes);
}

/// Byte offset of section `sec`'s payload.
std::uint64_t section_offset(const std::string& bytes, std::size_t sec) {
  namespace d = csr_detail;
  const auto* p = reinterpret_cast<const unsigned char*>(bytes.data());
  return d::get_u64(p + d::header_bytes + sec * d::table_entry_bytes + 8);
}

/// Hand-assemble a tiny but fully valid NWHYCSR2 file (n0 = n1 = m = 1)
/// plus, optionally, a trailing unknown-kind section with `elem_size` 0 and
/// a length that is a multiple of nothing — bytes the committed writer
/// never produces, exercising the reader's forward-compatibility path at
/// the byte level (per docs/IO_FORMATS.md §4.5, unknown kinds are
/// checksum-verified and dropped, and their elem_size is never trusted).
/// `dup_kind`, when nonzero, appends a *second* section of that known kind
/// (with a short but elem-size-aligned payload) — the duplicate-kind shape
/// §4.5 requires both readers to reject.
std::string build_tiny_snapshot(bool with_unknown_section, std::uint32_t dup_kind = 0) {
  namespace d = csr_detail;
  const std::uint64_t idx[2] = {0, 1};
  const std::uint32_t tgt[1] = {0};
  struct sec {
    std::uint32_t kind, elem;
    std::string   payload;
  };
  std::vector<sec> secs = {
      {csr_sec_e2n_indices, 8, std::string(reinterpret_cast<const char*>(idx), 16)},
      {csr_sec_e2n_targets, 4, std::string(reinterpret_cast<const char*>(tgt), 4)},
      {csr_sec_n2e_indices, 8, std::string(reinterpret_cast<const char*>(idx), 16)},
      {csr_sec_n2e_targets, 4, std::string(reinterpret_cast<const char*>(tgt), 4)},
  };
  if (with_unknown_section) secs.push_back({99, 0, "7 bytes"});
  if (dup_kind != 0) {
    secs.push_back({dup_kind, csr_detail::expected_elem_size(dup_kind),
                    std::string(reinterpret_cast<const char*>(idx), 8)});
  }
  const auto          count     = static_cast<std::uint32_t>(secs.size());
  const std::uint64_t table_end = d::header_bytes + std::uint64_t{count} * d::table_entry_bytes;
  std::vector<std::uint64_t> offsets;
  std::uint64_t              off = (table_end + 63) / 64 * 64;
  for (const auto& s : secs) {
    offsets.push_back(off);
    off = (off + s.payload.size() + 63) / 64 * 64;
  }
  const std::uint64_t file_size = offsets.back() + secs.back().payload.size();
  std::string         bytes(file_size, '\0');
  auto*               p = reinterpret_cast<unsigned char*>(bytes.data());
  std::memcpy(p, csr_snapshot_magic, sizeof(csr_snapshot_magic));
  d::put_u32(p + 8, csr_snapshot_version);
  d::put_u32(p + 12, csr_flag_canonical);
  d::put_u64(p + 16, 1);  // n0
  d::put_u64(p + 24, 1);  // n1
  d::put_u64(p + 32, 1);  // m
  d::put_u32(p + 40, count);
  d::put_u64(p + 48, file_size);
  for (std::uint32_t i = 0; i < count; ++i) {
    auto* e = p + d::header_bytes + std::size_t{i} * d::table_entry_bytes;
    d::put_u32(e + 0, secs[i].kind);
    d::put_u32(e + 4, secs[i].elem);
    d::put_u64(e + 8, offsets[i]);
    d::put_u64(e + 16, secs[i].payload.size());
    d::put_u64(e + 24, d::fnv1a64(secs[i].payload.data(), secs[i].payload.size()));
    std::memcpy(p + offsets[i], secs[i].payload.data(), secs[i].payload.size());
  }
  refresh_header_checksum(bytes);
  return bytes;
}

}  // namespace

TEST(CsrSnapshot, MmapRoundTripIsBitExactAcrossSeedsAndThreads) {
  nwtest::concurrency_guard guard;
  for (auto seed : nwtest::differential_seeds(0x5A90)) {
    NWHY_SEED_TRACE(seed);
    NWHypergraph hg(gen::arbitrary_hypergraph(seed));
    scratch_file f("roundtrip");
    hg.save_csr_snapshot(f.path);
    for (unsigned threads : nwtest::differential_thread_counts()) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      nw::par::thread_pool::set_default_concurrency(threads);
      auto snap = load_csr_snapshot(f.path, /*verify_checksums=*/true);
      EXPECT_TRUE(snap.canonical());
      EXPECT_EQ(snap.n0, hg.num_hyperedges());
      EXPECT_EQ(snap.n1, hg.num_hypernodes());
      EXPECT_EQ(snap.m, hg.num_incidences());
      expect_same_csr(snap.edges.csr(), hg.hyperedges().csr());
      expect_same_csr(snap.nodes.csr(), hg.hypernodes().csr());
      // Re-expanded incidence list == the canonical edge list.
      auto el = snap.to_biedgelist();
      ASSERT_EQ(el.size(), hg.edge_list().size());
      for (std::size_t i = 0; i < el.size(); ++i) ASSERT_EQ(el[i], hg.edge_list()[i]);
      // The CSR pair must still be exact mutual transposes.
      auto cons = validate_csr_pair(snap.edges, snap.nodes);
      EXPECT_TRUE(cons.consistent()) << cons.to_string();
    }
  }
}

TEST(CsrSnapshot, StreamAndMmapReadersAgree) {
  NWHypergraph hg(gen::arbitrary_hypergraph(0xCAFE));
  scratch_file f("stream");
  hg.save_csr_snapshot(f.path);
#if NWHY_HAS_MMAP
  auto mapped = map_csr_snapshot(f.path, /*verify_checksums=*/true);
  EXPECT_TRUE(mapped.zero_copy());
  EXPECT_TRUE(mapped.edges.csr().is_external());
#endif
  std::ifstream in(f.path, std::ios::binary);
  auto          streamed = read_csr_snapshot(in, f.path);
  EXPECT_FALSE(streamed.zero_copy());
  EXPECT_FALSE(streamed.edges.csr().is_external());
#if NWHY_HAS_MMAP
  expect_same_csr(mapped.edges.csr(), streamed.edges.csr());
  expect_same_csr(mapped.nodes.csr(), streamed.nodes.csr());
#endif
  expect_same_csr(streamed.edges.csr(), hg.hyperedges().csr());
}

TEST(CsrSnapshot, PipeStyleStringStreamRoundTrip) {
  NWHypergraph       hg(nwtest::figure1_hypergraph());
  std::ostringstream out(std::ios::binary);
  write_csr_snapshot(out, hg.hyperedges(), hg.hypernodes());
  std::istringstream in(out.str(), std::ios::binary);
  auto               snap = read_csr_snapshot(in);
  expect_same_csr(snap.edges.csr(), hg.hyperedges().csr());
  expect_same_csr(snap.nodes.csr(), hg.hypernodes().csr());
}

TEST(CsrSnapshot, AdjoinSectionRoundTrips) {
  NWHypergraph hg(gen::arbitrary_hypergraph(0xADA0));
  scratch_file f("adjoin");
  hg.save_csr_snapshot(f.path, /*with_adjoin=*/true);
  auto snap = load_csr_snapshot(f.path, /*verify_checksums=*/true);
  ASSERT_TRUE(snap.adjoin.has_value());
  EXPECT_EQ(snap.adjoin->nrealedges, hg.num_hyperedges());
  EXPECT_EQ(snap.adjoin->nrealnodes, hg.num_hypernodes());
  expect_same_csr(snap.adjoin->graph, hg.adjoin().graph);
  // Adoption installs the cached adjoin without a rebuild.
  NWHypergraph loaded(std::move(snap));
  expect_same_csr(loaded.adjoin().graph, hg.adjoin().graph);
}

TEST(CsrSnapshot, NWHypergraphAdoptionPreservesAlgorithms) {
  NWHypergraph hg(gen::arbitrary_hypergraph(0xBF5));
  scratch_file f("adopt");
  hg.save_csr_snapshot(f.path);
  NWHypergraph loaded(load_csr_snapshot(f.path));
  EXPECT_EQ(loaded.num_hyperedges(), hg.num_hyperedges());
  EXPECT_EQ(loaded.num_hypernodes(), hg.num_hypernodes());
  EXPECT_EQ(loaded.num_incidences(), hg.num_incidences());
  EXPECT_EQ(loaded.edge_sizes(), hg.edge_sizes());
  EXPECT_EQ(loaded.node_degrees(), hg.node_degrees());
  auto cc1 = hg.connected_components();
  auto cc2 = loaded.connected_components();
  EXPECT_TRUE(nwtest::same_partition(cc1.labels_edge, cc2.labels_edge));
  EXPECT_TRUE(nwtest::same_partition(cc1.labels_node, cc2.labels_node));
  if (hg.num_hyperedges() > 0) {
    auto b1 = hg.bfs(0);
    auto b2 = loaded.bfs(0);
    EXPECT_EQ(b1.dist_edge, b2.dist_edge);
    EXPECT_EQ(b1.dist_node, b2.dist_node);
  }
}

TEST(CsrSnapshot, EmptyHypergraphRoundTrips) {
  NWHypergraph hg(biedgelist<>(5, 7));
  scratch_file f("empty");
  hg.save_csr_snapshot(f.path);
  auto snap = load_csr_snapshot(f.path, /*verify_checksums=*/true);
  EXPECT_EQ(snap.n0, 5u);
  EXPECT_EQ(snap.n1, 7u);
  EXPECT_EQ(snap.m, 0u);
  EXPECT_EQ(snap.edges.num_edges(), 0u);
  auto el = snap.to_biedgelist();
  EXPECT_EQ(el.size(), 0u);
  EXPECT_EQ(el.num_vertices(0), 5u);
  EXPECT_EQ(el.num_vertices(1), 7u);
}

TEST(CsrSnapshot, NonCanonicalSnapshotTriggersRebuild) {
  NWHypergraph hg(gen::arbitrary_hypergraph(0xDEC0));
  scratch_file f("noncanon");
  write_csr_snapshot(f.path, hg.hyperedges(), hg.hypernodes(), nullptr, /*canonical=*/false);
  auto snap = load_csr_snapshot(f.path);
  EXPECT_FALSE(snap.canonical());
  NWHypergraph rebuilt(std::move(snap));  // falls back to sort_and_unique + rebuild
  expect_same_csr(rebuilt.hyperedges().csr(), hg.hyperedges().csr());
}

// --- rejection paths --------------------------------------------------------

TEST(CsrSnapshot, RejectsBadMagic) {
  scratch_file f("badmagic");
  dump(f.path, "NOTNWHY2 plus whatever follows, padded well past sixty-four bytes......");
  EXPECT_THROW(
      {
        try {
          load_csr_snapshot(f.path);
        } catch (const io_error& e) {
          EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos);
          throw;
        }
      },
      io_error);
  std::istringstream in("NOTNWHY2 short", std::ios::binary);
  EXPECT_THROW(read_csr_snapshot(in), io_error);
}

TEST(CsrSnapshot, RejectsTruncationAtEveryLayer) {
  NWHypergraph hg(nwtest::figure1_hypergraph());
  scratch_file f("trunc");
  hg.save_csr_snapshot(f.path);
  auto bytes = slurp(f.path);
  ASSERT_GT(bytes.size(), 128u);
  // Chop inside: header, section table, first payload, last payload.
  for (std::size_t keep : {std::size_t{10}, std::size_t{70}, std::size_t{200},
                           bytes.size() - 3}) {
    SCOPED_TRACE("keep=" + std::to_string(keep));
    scratch_file cut("trunc_cut");
    dump(cut.path, bytes.substr(0, keep));
    EXPECT_THROW(load_csr_snapshot(cut.path), io_error);
    std::istringstream in(bytes.substr(0, keep), std::ios::binary);
    EXPECT_THROW(read_csr_snapshot(in), io_error);
  }
}

TEST(CsrSnapshot, RejectsHeaderCorruption) {
  NWHypergraph hg(nwtest::figure1_hypergraph());
  scratch_file f("hdrcorrupt");
  hg.save_csr_snapshot(f.path);
  auto bytes = slurp(f.path);
  bytes[17] ^= 0x40;  // flip a bit inside n0
  scratch_file bad("hdrcorrupt_bad");
  dump(bad.path, bytes);
  EXPECT_THROW(
      {
        try {
          load_csr_snapshot(bad.path);
        } catch (const io_error& e) {
          EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos);
          throw;
        }
      },
      io_error);
}

TEST(CsrSnapshot, RejectsPayloadCorruption) {
  NWHypergraph hg(gen::arbitrary_hypergraph(0xC0DE));
  scratch_file f("paycorrupt");
  hg.save_csr_snapshot(f.path);
  auto bytes = slurp(f.path);
  bytes[bytes.size() - 1] ^= 0x01;  // flip a bit in the last payload
  // The streamed reader always verifies checksums...
  std::istringstream in(bytes, std::ios::binary);
  EXPECT_THROW(read_csr_snapshot(in), io_error);
  scratch_file bad("paycorrupt_bad");
  dump(bad.path, bytes);
  // ...the mmap loader only when asked (zero-copy loads stay O(page faults)).
  EXPECT_THROW(load_csr_snapshot(bad.path, /*verify_checksums=*/true), io_error);
}

TEST(CsrSnapshot, RejectsUnsupportedVersion) {
  NWHypergraph hg(nwtest::figure1_hypergraph());
  scratch_file f("version");
  hg.save_csr_snapshot(f.path);
  auto bytes = slurp(f.path);
  csr_detail::put_u32(reinterpret_cast<unsigned char*>(bytes.data()) + 8, 99);
  refresh_header_checksum(bytes);
  scratch_file bad("version_bad");
  dump(bad.path, bytes);
  EXPECT_THROW(
      {
        try {
          load_csr_snapshot(bad.path);
        } catch (const io_error& e) {
          EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
          throw;
        }
      },
      io_error);
}

TEST(CsrSnapshot, RejectsOutOfBoundsSection) {
  NWHypergraph hg(nwtest::figure1_hypergraph());
  scratch_file f("oob");
  hg.save_csr_snapshot(f.path);
  auto bytes = slurp(f.path);
  // Push the first section's offset past the declared file size.
  namespace d = csr_detail;
  auto* entry = reinterpret_cast<unsigned char*>(bytes.data()) + d::header_bytes;
  d::put_u64(entry + 8, 1u << 30);
  refresh_header_checksum(bytes);
  scratch_file bad("oob_bad");
  dump(bad.path, bytes);
  EXPECT_THROW(
      {
        try {
          load_csr_snapshot(bad.path);
        } catch (const io_error& e) {
          EXPECT_NE(std::string(e.what()).find("bounds"), std::string::npos);
          throw;
        }
      },
      io_error);
}

// A *crafted* snapshot has internally consistent checksums, so the only
// line of defense against out-of-bounds interior offsets is the structural
// pass.  Before that pass existed, this file drove to_biedgelist into
// heap-corrupting writes (idx[e+1] far past m) on the default
// verify_checksums=false mmap path.
TEST(CsrSnapshot, RejectsNonMonotonicInteriorIndex) {
  NWHypergraph hg(nwtest::figure1_hypergraph());
  scratch_file f("nonmono");
  hg.save_csr_snapshot(f.path);
  auto bytes = slurp(f.path);
  // Section 0 = E2N_INDICES: blow up idx[1] while leaving idx[0] == 0 and
  // idx[n0] == m intact, so the O(1) extents check alone would pass.
  namespace d = csr_detail;
  auto* idx1 = reinterpret_cast<unsigned char*>(bytes.data()) + section_offset(bytes, 0) + 8;
  d::put_u64(idx1, std::uint64_t{1} << 30);
  refresh_section_checksum(bytes, 0);
  scratch_file bad("nonmono_bad");
  dump(bad.path, bytes);
  EXPECT_THROW(
      {
        try {
          load_csr_snapshot(bad.path);  // mmap path, checksums NOT verified
        } catch (const io_error& e) {
          EXPECT_NE(std::string(e.what()).find("monotonically"), std::string::npos);
          throw;
        }
      },
      io_error);
  std::istringstream in(bytes, std::ios::binary);  // checksums all verify
  EXPECT_THROW(read_csr_snapshot(in), io_error);
}

TEST(CsrSnapshot, RejectsTargetIdsOutsideOppositePartition) {
  NWHypergraph hg(nwtest::figure1_hypergraph());
  scratch_file f("oobtgt");
  hg.save_csr_snapshot(f.path);
  auto bytes = slurp(f.path);
  // Section 1 = E2N_TARGETS: first hypernode id -> far past n1.
  namespace d = csr_detail;
  auto* tgt0 = reinterpret_cast<unsigned char*>(bytes.data()) + section_offset(bytes, 1);
  d::put_u32(tgt0, 0xFFFFFFF0u);
  refresh_section_checksum(bytes, 1);
  scratch_file bad("oobtgt_bad");
  dump(bad.path, bytes);
  EXPECT_THROW(
      {
        try {
          load_csr_snapshot(bad.path);  // mmap path, checksums NOT verified
        } catch (const io_error& e) {
          EXPECT_NE(std::string(e.what()).find("opposite partition"), std::string::npos);
          throw;
        }
      },
      io_error);
  std::istringstream in(bytes, std::ios::binary);  // checksums all verify
  EXPECT_THROW(read_csr_snapshot(in), io_error);
}

// Unknown kinds are forward-compatibility room: both readers must tolerate
// them, and the streamed reader must never size a staging buffer from
// their untrusted elem_size (0 here, with a 7-byte payload — the exact
// shape that used to overflow the u32 staging branch).
TEST(CsrSnapshot, ReadersTolerateUnknownSectionsWithoutTrustingElemSize) {
  auto bytes = build_tiny_snapshot(/*with_unknown_section=*/true);
  std::istringstream in(bytes, std::ios::binary);
  auto               snap = read_csr_snapshot(in);
  EXPECT_EQ(snap.n0, 1u);
  EXPECT_EQ(snap.n1, 1u);
  EXPECT_EQ(snap.m, 1u);
  ASSERT_EQ(snap.edges.csr().targets().size(), 1u);
  EXPECT_EQ(snap.edges.csr().targets()[0], 0u);
  scratch_file f("unknown");
  dump(f.path, bytes);
  auto loaded = load_csr_snapshot(f.path, /*verify_checksums=*/true);
  EXPECT_EQ(loaded.m, 1u);
  // The unknown section is still checksum-verified on the streamed path.
  auto corrupt = bytes;
  corrupt[corrupt.size() - 1] ^= 0x01;  // last byte of the unknown payload
  std::istringstream cin(corrupt, std::ios::binary);
  EXPECT_THROW(read_csr_snapshot(cin), io_error);
  // Sanity: the hand-assembled file without the extra section also loads.
  auto plain = build_tiny_snapshot(/*with_unknown_section=*/false);
  std::istringstream pin(plain, std::ios::binary);
  EXPECT_EQ(read_csr_snapshot(pin).m, 1u);
}

// A known kind listed twice could have its two copies resolved
// inconsistently (one copy validated, the other adopted): before
// parse_header rejected duplicates, a crafted file with two E2N_INDICES
// sections — the first valid-length, the second shorter — could steer the
// streamed reader's staging past require_section and into out-of-bounds
// reads (compressed dictionary pass) or an NW_ASSERT abort (raw path).
TEST(CsrSnapshot, RejectsDuplicateKnownSectionKinds) {
  for (std::uint32_t kind : {csr_sec_e2n_indices, csr_sec_e2n_targets, csr_sec_n2e_targets}) {
    SCOPED_TRACE("duplicated kind " + std::to_string(kind));
    auto bytes = build_tiny_snapshot(/*with_unknown_section=*/false, /*dup_kind=*/kind);
    scratch_file bad("dupsec");
    dump(bad.path, bytes);
    EXPECT_THROW(
        {
          try {
            load_csr_snapshot(bad.path);
          } catch (const io_error& e) {
            EXPECT_NE(std::string(e.what()).find("more than once"), std::string::npos)
                << e.what();
            throw;
          }
        },
        io_error);
    std::istringstream in(bytes, std::ios::binary);
    EXPECT_THROW(read_csr_snapshot(in), io_error);
  }
  // Unknown kinds, by contrast, may legitimately repeat.
  auto ok = build_tiny_snapshot(/*with_unknown_section=*/true, /*dup_kind=*/99);
  std::istringstream in(ok, std::ios::binary);
  EXPECT_EQ(read_csr_snapshot(in).m, 1u);
}

// A stream's header can claim any file_size, so section lengths can pass
// the in-file bounds checks while being astronomically large.  Staging must
// surface that as io_error (or hit honest truncation), never std::bad_alloc
// or an OOM kill.
TEST(CsrSnapshot, HugeClaimedSectionLengthIsIoErrorNotBadAlloc) {
  namespace d = csr_detail;
  const std::uint64_t sec_off   = 128;  // 64-aligned, past header + 1-entry table (96)
  const std::uint64_t sec_len   = std::uint64_t{1} << 60;
  const std::uint64_t file_size = sec_off + sec_len;
  std::string         bytes(96, '\0');
  auto*               p = reinterpret_cast<unsigned char*>(bytes.data());
  std::memcpy(p, csr_snapshot_magic, sizeof(csr_snapshot_magic));
  d::put_u32(p + 8, csr_snapshot_version);
  d::put_u64(p + 16, 1);  // n0
  d::put_u64(p + 24, 1);  // n1
  d::put_u64(p + 32, 1);  // m
  d::put_u32(p + 40, 1);  // section_count
  d::put_u64(p + 48, file_size);
  auto* e = p + d::header_bytes;
  d::put_u32(e + 0, csr_sec_e2n_indices);
  d::put_u32(e + 4, 8);
  d::put_u64(e + 8, sec_off);
  d::put_u64(e + 16, sec_len);
  refresh_header_checksum(bytes);
  std::istringstream in(bytes, std::ios::binary);
  EXPECT_THROW(read_csr_snapshot(in), io_error);
}

TEST(CsrSnapshot, CopyOfMmapViewIsOwningDeepCopy) {
#if NWHY_HAS_MMAP
  NWHypergraph hg(gen::arbitrary_hypergraph(0xD33D));
  scratch_file f("deepcopy");
  hg.save_csr_snapshot(f.path);
  nw::graph::adjacency<> copy;
  {
    auto snap = map_csr_snapshot(f.path);
    ASSERT_TRUE(snap.edges.csr().is_external());
    copy = snap.edges.csr();  // deep copy into owned storage
    EXPECT_FALSE(copy.is_external());
  }  // snapshot + mapping destroyed here
  // The copy must survive the unmap.
  expect_same_csr(copy, hg.hyperedges().csr());
#else
  GTEST_SKIP() << "no mmap on this platform";
#endif
}

// --- compressed sections (kinds 7-10): crafted-input rejection ----------------------
//
// Every mutation below produces a file whose checksums all verify (the
// refresh_* helpers re-hash after the edit), so the *structural* validation
// of the compressed payloads is what must catch it — with io_error carrying
// byte context, never UB.  scripts/sanitize.sh ubsan runs this suite under
// -fno-sanitize-recover to prove the "never UB" half.

namespace {

/// Table index of the first section with `kind`, or npos.
std::size_t section_index_by_kind(const std::string& bytes, std::uint32_t kind) {
  namespace d = csr_detail;
  const auto* p     = reinterpret_cast<const unsigned char*>(bytes.data());
  const std::uint32_t count = d::get_u32(p + 40);
  for (std::uint32_t i = 0; i < count; ++i) {
    if (d::get_u32(p + d::header_bytes + std::size_t{i} * d::table_entry_bytes) == kind) return i;
  }
  return std::string::npos;
}

/// Serialize `hg` as a compressed snapshot into a byte string.
std::string compressed_bytes(const NWHypergraph& hg, csr_compress_options opt = {}) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  write_csr_snapshot(ss, hg.hyperedges(), hg.hypernodes(), opt);
  return ss.str();
}

/// Both readers must reject `bytes` with io_error (mmap without checksum
/// verification — proving structural validation alone suffices — and the
/// always-verifying streamed reader).
void expect_both_readers_reject(const std::string& bytes, const char* needle) {
  scratch_file bad("zcraft");
  dump(bad.path, bytes);
  EXPECT_THROW(
      {
        try {
          load_csr_snapshot(bad.path);
        } catch (const io_error& e) {
          if (needle != nullptr) {
            EXPECT_NE(std::string(e.what()).find(needle), std::string::npos) << e.what();
          }
          throw;
        }
      },
      io_error);
  std::istringstream in(bytes, std::ios::binary);
  EXPECT_THROW(read_csr_snapshot(in), io_error);
}

/// A hypergraph with exact duplicate hyperedge rows, so the compressing
/// writer emits the dictionary kinds 9/10.
NWHypergraph duplicated_rows_hypergraph() {
  biedgelist<> el;
  for (vertex_id_t e = 0; e < 12; ++e) {
    for (vertex_id_t v : {e % 4, static_cast<vertex_id_t>(e % 4 + 5)}) {
      el.push_back(e, v);
    }
  }
  el.sort_and_unique();
  return NWHypergraph(std::move(el));
}

}  // namespace

TEST(CsrSnapshotCompressed, RejectsTruncationInsideCompressedPayloads) {
  NWHypergraph hg(gen::arbitrary_hypergraph(0x7A17));
  auto         bytes = compressed_bytes(hg);
  ASSERT_GT(bytes.size(), 256u);
  for (std::size_t keep : {std::size_t{200}, bytes.size() / 2, bytes.size() - 5}) {
    SCOPED_TRACE("keep=" + std::to_string(keep));
    scratch_file cut("ztrunc");
    dump(cut.path, bytes.substr(0, keep));
    EXPECT_THROW(load_csr_snapshot(cut.path), io_error);
    std::istringstream in(bytes.substr(0, keep), std::ios::binary);
    EXPECT_THROW(read_csr_snapshot(in), io_error);
  }
}

TEST(CsrSnapshotCompressed, RejectsControlStreamOverrunningItsBlock) {
  // Crank the first control byte to all-4-byte lanes: the per-block demand
  // recomputed by the validator no longer matches the block's data slice.
  NWHypergraph hg(gen::arbitrary_hypergraph(0x7A18));
  auto bytes = compressed_bytes(hg, csr_compress_options{true, /*dedup_rows=*/false, 4096});
  auto sec   = section_index_by_kind(bytes, csr_sec_e2n_targets_svb);
  ASSERT_NE(sec, std::string::npos);
  namespace d = csr_detail;
  const auto* p  = reinterpret_cast<const unsigned char*>(bytes.data());
  const auto  off = d::get_u64(p + d::header_bytes + sec * d::table_entry_bytes + 8);
  const auto  nv  = d::get_u64(p + off + 8);
  const auto  nb  = (nv + 4095) / 4096;
  // ctrl stream begins after the 32-byte sub-header and nb x 16-byte metas.
  auto* ctrl0 = reinterpret_cast<unsigned char*>(bytes.data()) + off + 32 + nb * 16;
  ASSERT_NE(*ctrl0, 0xFF) << "fixture delta widths already maximal";
  *ctrl0 = 0xFF;
  refresh_section_checksum(bytes, sec);
  expect_both_readers_reject(bytes, "control");
}

TEST(CsrSnapshotCompressed, RejectsPayloadSmallerThanItsGeometry) {
  // Shrink the section length in the table: the sub-header's own geometry
  // (metas + control + data + pad) no longer fits.
  NWHypergraph hg(gen::arbitrary_hypergraph(0x7A19));
  auto bytes = compressed_bytes(hg, csr_compress_options{true, false, 4096});
  auto sec   = section_index_by_kind(bytes, csr_sec_n2e_targets_svb);
  ASSERT_NE(sec, std::string::npos);
  namespace d = csr_detail;
  auto* e   = reinterpret_cast<unsigned char*>(bytes.data()) + d::header_bytes +
            sec * d::table_entry_bytes;
  const auto len = d::get_u64(e + 16);
  ASSERT_GT(len, 8u);
  d::put_u64(e + 16, len - 8);
  refresh_section_checksum(bytes, sec);
  expect_both_readers_reject(bytes, nullptr);
}

TEST(CsrSnapshotCompressed, RejectsDataBytesInflatedPastTheSection) {
  // Inflate the sub-header's data_bytes: now geometry exceeds the payload.
  NWHypergraph hg(gen::arbitrary_hypergraph(0x7A1A));
  auto bytes = compressed_bytes(hg, csr_compress_options{true, false, 4096});
  auto sec   = section_index_by_kind(bytes, csr_sec_e2n_targets_svb);
  ASSERT_NE(sec, std::string::npos);
  namespace d = csr_detail;
  const auto* p   = reinterpret_cast<const unsigned char*>(bytes.data());
  const auto  off = d::get_u64(p + d::header_bytes + sec * d::table_entry_bytes + 8);
  auto* db = reinterpret_cast<unsigned char*>(bytes.data()) + off + 16;
  d::put_u64(db, d::get_u64(db) + 1000);
  refresh_section_checksum(bytes, sec);
  expect_both_readers_reject(bytes, nullptr);
}

TEST(CsrSnapshotCompressed, RejectsCompressedCountDisagreeingWithHeader) {
  // Shrink the header's incidence count m: the E2N index section still
  // sums to the real count, which no longer matches.
  NWHypergraph hg(gen::arbitrary_hypergraph(0x7A1B));
  auto bytes = compressed_bytes(hg, csr_compress_options{true, false, 4096});
  namespace d = csr_detail;
  auto* p = reinterpret_cast<unsigned char*>(bytes.data());
  const auto m = d::get_u64(p + 32);
  ASSERT_GT(m, 0u);
  d::put_u64(p + 32, m - 1);
  refresh_header_checksum(bytes);
  expect_both_readers_reject(bytes, nullptr);
}

TEST(CsrSnapshotCompressed, RejectsDictRefOutOfRange) {
  NWHypergraph hg = duplicated_rows_hypergraph();
  auto         bytes = compressed_bytes(hg);
  auto         sec   = section_index_by_kind(bytes, csr_sec_e2n_dict_refs);
  ASSERT_NE(sec, std::string::npos) << "fixture did not engage the dictionary";
  namespace d = csr_detail;
  auto* r0 = reinterpret_cast<unsigned char*>(bytes.data()) + section_offset(bytes, sec);
  d::put_u32(r0, 0xFFFFFFF0u);
  refresh_section_checksum(bytes, sec);
  expect_both_readers_reject(bytes, "dictionary");
}

TEST(CsrSnapshotCompressed, RejectsDictRefWithMismatchedDegree) {
  // Point a row's ref at a dictionary row of a *different* length: the
  // degree cross-check (dict row length vs the row's index extent) fires
  // even though the ref itself is in range.
  NWHypergraph hg = duplicated_rows_hypergraph();
  // Append one hyperedge with a distinct degree so two dictionary rows of
  // different lengths exist.
  biedgelist<> el = hg.edge_list();
  for (vertex_id_t v : {0, 1, 2, 3, 4}) el.push_back(12, v);
  for (vertex_id_t v : {0, 1, 2, 3, 4}) el.push_back(13, v);
  NWHypergraph hg2(std::move(el));
  auto         bytes = compressed_bytes(hg2);
  auto         sec   = section_index_by_kind(bytes, csr_sec_e2n_dict_refs);
  ASSERT_NE(sec, std::string::npos);
  namespace d = csr_detail;
  auto* p  = reinterpret_cast<unsigned char*>(bytes.data());
  auto* r  = p + section_offset(bytes, sec);
  // Row 0 has degree 2, the appended rows degree 5: swap row 0's ref for
  // the last row's ref (a different dictionary slot with another length).
  const auto last = d::get_u32(r + (hg2.num_hyperedges() - 1) * 4);
  ASSERT_NE(d::get_u32(r), last);
  d::put_u32(r, last);
  refresh_section_checksum(bytes, sec);
  expect_both_readers_reject(bytes, "dictionary");
}

TEST(CsrSnapshotCompressed, RejectsIncompleteDictionaryPair) {
  NWHypergraph hg = duplicated_rows_hypergraph();
  for (std::uint32_t victim : {csr_sec_e2n_dict_refs, csr_sec_e2n_dict_indices}) {
    SCOPED_TRACE("victim kind " + std::to_string(victim));
    auto bytes = compressed_bytes(hg);
    auto sec   = section_index_by_kind(bytes, victim);
    ASSERT_NE(sec, std::string::npos);
    namespace d = csr_detail;
    // Re-kind the section to an unknown id: readers drop unknown kinds, so
    // its partner is now alone.
    d::put_u32(reinterpret_cast<unsigned char*>(bytes.data()) + d::header_bytes +
                   sec * d::table_entry_bytes,
               1999);
    refresh_header_checksum(bytes);
    expect_both_readers_reject(bytes, "pair");
  }
}

TEST(CsrSnapshotCompressed, RejectsDictionaryWithoutCompressedTargets) {
  // Re-kind the SVB targets section away: the dictionary pair now rides
  // alongside a raw/absent E2N targets section, which the spec forbids.
  NWHypergraph hg = duplicated_rows_hypergraph();
  auto         bytes = compressed_bytes(hg);
  auto         sec   = section_index_by_kind(bytes, csr_sec_e2n_targets_svb);
  ASSERT_NE(sec, std::string::npos);
  namespace d = csr_detail;
  d::put_u32(reinterpret_cast<unsigned char*>(bytes.data()) + d::header_bytes +
                 sec * d::table_entry_bytes,
             1999);
  refresh_header_checksum(bytes);
  expect_both_readers_reject(bytes, "dictionary");
}

TEST(CsrSnapshotCompressed, OldReaderStoryMissingTargetsReadsAsMissingSection) {
  // Forward compatibility: a reader that predates the compressed kinds
  // sees them as unknown sections and reports the raw targets section as
  // missing — the documented failure mode.  Emulate by re-kinding *both*
  // SVB sections away and checking the message names the required kind.
  NWHypergraph hg(gen::arbitrary_hypergraph(0x7A1C));
  auto bytes = compressed_bytes(hg, csr_compress_options{true, false, 4096});
  namespace d = csr_detail;
  for (std::uint32_t kind : {csr_sec_e2n_targets_svb, csr_sec_n2e_targets_svb}) {
    auto sec = section_index_by_kind(bytes, kind);
    ASSERT_NE(sec, std::string::npos);
    d::put_u32(reinterpret_cast<unsigned char*>(bytes.data()) + d::header_bytes +
                   sec * d::table_entry_bytes,
               1999);
  }
  refresh_header_checksum(bytes);
  expect_both_readers_reject(bytes, "missing required section");
}

// The per-block min/max steer contains() skipping, so they must be exact:
// a forged pair wide enough that the probe still decodes the block must be
// rejected at decode time (io_error), not silently tolerated — otherwise
// crafted skip metadata could make stream-mode queries diverge from a
// materialized load of the same file.  The checksum-skipping mmap path is
// the one with no other line of defense.
TEST(CsrSnapshotCompressed, ForgedBlockMinMaxFailsLoudlyWhenDecoded) {
  NWHypergraph hg = duplicated_rows_hypergraph();
  auto         bytes = compressed_bytes(hg);
  auto         sec   = section_index_by_kind(bytes, csr_sec_e2n_targets_svb);
  ASSERT_NE(sec, std::string::npos);
  namespace d = csr_detail;
  // Widen block 0's min/max to [0, 2^32-1]: no probe is ever diverted, so
  // the first contains() decode sees metadata disagreeing with the values.
  auto* meta = reinterpret_cast<unsigned char*>(bytes.data()) + section_offset(bytes, sec) + 32;
  d::put_u32(meta + 8, 0);
  d::put_u32(meta + 12, 0xFFFFFFFFu);
  refresh_section_checksum(bytes, sec);
  scratch_file bad("zminmax");
  dump(bad.path, bytes);
  auto snap = load_csr_snapshot(bad.path, /*verify_checksums=*/false, snapshot_decode::stream);
  ASSERT_TRUE(snap.edges_view.has_value());
  EXPECT_THROW(
      {
        try {
          (void)snap.edges_view->contains(0, 0);
        } catch (const io_error& e) {
          EXPECT_NE(std::string(e.what()).find("min/max"), std::string::npos) << e.what();
          throw;
        }
      },
      io_error);
}

// to_biedgelist on a stream-mode snapshot must expand the *compressed* E2N
// view (it used to read the unpopulated `edges` CSR and silently return an
// empty incidence list).
TEST(CsrSnapshotCompressed, StreamModeToBiedgelistMatchesEdgeList) {
  NWHypergraph hg(gen::arbitrary_hypergraph(0x7A1D));
  scratch_file f("zstream_el");
  hg.save_csr_snapshot(f.path, csr_compress_options{});
  auto snap = load_csr_snapshot(f.path, /*verify_checksums=*/true, snapshot_decode::stream);
  ASSERT_TRUE(snap.streaming());
  auto el = snap.to_biedgelist();
  ASSERT_EQ(el.size(), hg.edge_list().size());
  for (std::size_t i = 0; i < el.size(); ++i) ASSERT_EQ(el[i], hg.edge_list()[i]);
  // The expansion is one-shot: the snapshot itself stays in stream mode.
  EXPECT_TRUE(snap.streaming());
}

// --------------------------------------------------------------------------
// Crafted shard-directory inputs (kinds 11/12/13).  Every mutation below
// keeps all checksums valid — exactly what a *crafted* file looks like —
// so rejection must come from structural validation in both plain readers
// and in the out-of-core sharded_snapshot, always as io_error, never UB.

#include "nwhy/io/shard.hpp"

namespace {

/// Serialize `hg` as a sharded snapshot (optionally SVB slices, optionally
/// with an embedded kind-13 inverse map) into a byte string.
std::string sharded_bytes(const NWHypergraph& hg, std::uint32_t shards, bool compress = false,
                          std::span<const vertex_id_t> relabel_inv = {}) {
  csr_shard_options so;
  so.shards   = shards;
  so.compress = compress;
  csr_write_options wopt;
  wopt.shard       = &so;
  wopt.relabel_inv = relabel_inv;
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  write_csr_snapshot(ss, hg.hyperedges(), hg.hypernodes(), wopt);
  return ss.str();
}

std::uint64_t peek_dir_word(const std::string& bytes, std::size_t shard, std::size_t word) {
  namespace d = csr_detail;
  const auto  sec = section_index_by_kind(bytes, csr_sec_shard_dir);
  const auto* p   = reinterpret_cast<const unsigned char*>(bytes.data());
  return d::get_u64(p + section_offset(bytes, sec) +
                    (shard * d::shard_record_words + word) * 8);
}

/// Overwrite one u64 of shard record `shard` and re-validate all checksums.
void poke_dir_word(std::string& bytes, std::size_t shard, std::size_t word,
                   std::uint64_t value) {
  namespace d  = csr_detail;
  const auto sec = section_index_by_kind(bytes, csr_sec_shard_dir);
  auto*      p   = reinterpret_cast<unsigned char*>(bytes.data());
  d::put_u64(p + section_offset(bytes, sec) + (shard * d::shard_record_words + word) * 8, value);
  refresh_section_checksum(bytes, sec);
}

/// Shrink section `sec`'s table length field and refresh its checksum over
/// the shortened payload (header checksum included).
void shrink_section_length(std::string& bytes, std::size_t sec, std::uint64_t new_len) {
  namespace d = csr_detail;
  auto* p     = reinterpret_cast<unsigned char*>(bytes.data());
  d::put_u64(p + d::header_bytes + sec * d::table_entry_bytes + 16, new_len);
  refresh_section_checksum(bytes, sec);
}

/// The out-of-core reader must reject too: either at open or at the first
/// load_shard sweep.
void expect_sharded_reader_rejects(const std::string& bytes) {
  scratch_file bad("shcraft");
  dump(bad.path, bytes);
  EXPECT_THROW(
      {
        sharded_snapshot snap(bad.path);
        for (std::size_t k = 0; k < snap.num_shards(); ++k) (void)snap.load_shard(k);
      },
      io_error);
}

NWHypergraph sharded_fixture() { return NWHypergraph(gen::arbitrary_hypergraph(0x5AA0)); }

}  // namespace

TEST(CsrSnapshotSharded, RejectsOverlappingShardRanges) {
  auto hg    = sharded_fixture();
  auto bytes = sharded_bytes(hg, 3);
  poke_dir_word(bytes, 0, 1, peek_dir_word(bytes, 0, 1) + 1);  // e_end into shard 1
  expect_both_readers_reject(bytes, nullptr);
  expect_sharded_reader_rejects(bytes);
}

TEST(CsrSnapshotSharded, RejectsGappedOrOutOfOrderShardRanges) {
  auto hg    = sharded_fixture();
  auto bytes = sharded_bytes(hg, 3);
  poke_dir_word(bytes, 1, 0, peek_dir_word(bytes, 1, 0) + 1);  // gap after shard 0
  expect_both_readers_reject(bytes, nullptr);
  expect_sharded_reader_rejects(bytes);
}

TEST(CsrSnapshotSharded, RejectsMisalignedSlicePayload) {
  auto hg    = sharded_fixture();
  auto bytes = sharded_bytes(hg, 3);
  poke_dir_word(bytes, 1, 2, peek_dir_word(bytes, 1, 2) + 8);  // e2n_off off 64-alignment
  expect_both_readers_reject(bytes, nullptr);
  expect_sharded_reader_rejects(bytes);
}

TEST(CsrSnapshotSharded, RejectsDirectoryLengthNotARecordMultiple) {
  auto hg    = sharded_fixture();
  auto bytes = sharded_bytes(hg, 3);
  const auto sec = section_index_by_kind(bytes, csr_sec_shard_dir);
  namespace d = csr_detail;
  const auto* p = reinterpret_cast<const unsigned char*>(bytes.data());
  const auto  len = d::get_u64(p + d::header_bytes + sec * d::table_entry_bytes + 16);
  shrink_section_length(bytes, sec, len - 8);
  expect_both_readers_reject(bytes, nullptr);
  expect_sharded_reader_rejects(bytes);
}

TEST(CsrSnapshotSharded, RejectsIncidenceCountLie) {
  auto hg    = sharded_fixture();
  auto bytes = sharded_bytes(hg, 3);
  poke_dir_word(bytes, 0, 8, peek_dir_word(bytes, 0, 8) + 1);  // counts no longer sum to m
  expect_both_readers_reject(bytes, nullptr);
  expect_sharded_reader_rejects(bytes);
}

TEST(CsrSnapshotSharded, RejectsSubIndexLengthLie) {
  auto hg    = sharded_fixture();
  auto bytes = sharded_bytes(hg, 3);
  poke_dir_word(bytes, 0, 5, peek_dir_word(bytes, 0, 5) - 8);  // sub_len != (n1+1)*8
  expect_both_readers_reject(bytes, nullptr);
  expect_sharded_reader_rejects(bytes);
}

TEST(CsrSnapshotSharded, RejectsTruncatedShardPayload) {
  auto hg    = sharded_fixture();
  auto bytes = sharded_bytes(hg, 3);
  const auto sec = section_index_by_kind(bytes, csr_sec_shard_payload);
  namespace d = csr_detail;
  const auto* p = reinterpret_cast<const unsigned char*>(bytes.data());
  const auto  len = d::get_u64(p + d::header_bytes + sec * d::table_entry_bytes + 16);
  ASSERT_GT(len, 64u);
  shrink_section_length(bytes, sec, len - 64);
  expect_both_readers_reject(bytes, nullptr);
  expect_sharded_reader_rejects(bytes);
}

TEST(CsrSnapshotSharded, RejectsUnknownShardFlags) {
  auto hg    = sharded_fixture();
  auto bytes = sharded_bytes(hg, 3);
  poke_dir_word(bytes, 0, 9, 4);  // only bit 0 (SVB) is defined
  expect_both_readers_reject(bytes, nullptr);
  expect_sharded_reader_rejects(bytes);
}

TEST(CsrSnapshotSharded, RejectsOutOfRangeSliceTargets) {
  auto hg    = sharded_fixture();
  auto bytes = sharded_bytes(hg, 3);  // raw slices: targets are plain u32
  namespace d = csr_detail;
  const auto sec         = section_index_by_kind(bytes, csr_sec_shard_payload);
  const auto payload_off = section_offset(bytes, sec);
  const auto e2n_off     = peek_dir_word(bytes, 0, 2);
  auto*      p           = reinterpret_cast<unsigned char*>(bytes.data());
  d::put_u32(p + payload_off + e2n_off, 0xFFFFFFF0u);  // >= n1
  refresh_section_checksum(bytes, sec);
  expect_both_readers_reject(bytes, nullptr);
  expect_sharded_reader_rejects(bytes);
}

TEST(CsrSnapshotSharded, RejectsDirectoryWithoutPayload) {
  auto hg    = sharded_fixture();
  auto bytes = sharded_bytes(hg, 3);
  namespace d = csr_detail;
  const auto sec = section_index_by_kind(bytes, csr_sec_shard_payload);
  auto*      p   = reinterpret_cast<unsigned char*>(bytes.data());
  d::put_u32(p + d::header_bytes + sec * d::table_entry_bytes, 99);  // now an unknown kind
  d::put_u32(p + d::header_bytes + sec * d::table_entry_bytes + 4, 0);
  refresh_header_checksum(bytes);
  expect_both_readers_reject(bytes, "pair");
  expect_sharded_reader_rejects(bytes);
}

TEST(CsrSnapshotSharded, RejectsRelabelInvNonPermutation) {
  auto hg = sharded_fixture();
  std::vector<vertex_id_t> identity(hg.num_hyperedges());
  std::iota(identity.begin(), identity.end(), 0);
  auto bytes = sharded_bytes(hg, 3, false, identity);
  namespace d = csr_detail;
  const auto sec = section_index_by_kind(bytes, csr_sec_relabel_inv);
  ASSERT_NE(sec, std::string::npos);
  auto* p = reinterpret_cast<unsigned char*>(bytes.data());
  // Duplicate entry 0 into slot 1: still in range, no longer a bijection.
  d::put_u32(p + section_offset(bytes, sec) + 4, 0);
  refresh_section_checksum(bytes, sec);
  expect_both_readers_reject(bytes, nullptr);
  expect_sharded_reader_rejects(bytes);
}

TEST(CsrSnapshotSharded, RejectsRelabelInvOutOfRangeEntry) {
  auto hg = sharded_fixture();
  std::vector<vertex_id_t> identity(hg.num_hyperedges());
  std::iota(identity.begin(), identity.end(), 0);
  auto bytes = sharded_bytes(hg, 3, false, identity);
  namespace d = csr_detail;
  const auto sec = section_index_by_kind(bytes, csr_sec_relabel_inv);
  auto*      p   = reinterpret_cast<unsigned char*>(bytes.data());
  d::put_u32(p + section_offset(bytes, sec), static_cast<std::uint32_t>(hg.num_hyperedges()));
  refresh_section_checksum(bytes, sec);
  expect_both_readers_reject(bytes, nullptr);
  expect_sharded_reader_rejects(bytes);
}

TEST(CsrSnapshotSharded, SvbSlicesRejectTruncationToo) {
  auto hg    = sharded_fixture();
  auto bytes = sharded_bytes(hg, 3, /*compress=*/true);
  const auto sec = section_index_by_kind(bytes, csr_sec_shard_payload);
  namespace d = csr_detail;
  const auto* p = reinterpret_cast<const unsigned char*>(bytes.data());
  const auto  len = d::get_u64(p + d::header_bytes + sec * d::table_entry_bytes + 16);
  ASSERT_GT(len, 128u);
  shrink_section_length(bytes, sec, len - 128);
  expect_both_readers_reject(bytes, nullptr);
  expect_sharded_reader_rejects(bytes);
}
