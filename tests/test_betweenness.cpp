// tests/test_betweenness.cpp — the batched frontier Brandes engine
// (nwhy/algorithms/s_betweenness.hpp) against the serial oracle
// (nwhy/ref/serial_betweenness.hpp) and the planted closed forms.
//
// Every comparison is EXPECT_EQ on doubles — the engine's contract is
// *bit-identical* scores at every thread count and batch size, not
// within-epsilon agreement.  Replay a failing seed with
// `NWHY_TEST_SEED=<n> ./tests/test_betweenness`.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "nwhy/algorithms/s_betweenness.hpp"
#include "nwhy/nwhypergraph.hpp"
#include "nwhy/ref/ref.hpp"
#include "prop_harness.hpp"
#include "test_util.hpp"

using namespace nw::hypergraph;
using nw::vertex_id_t;
namespace ref = nw::hypergraph::ref;

namespace {

/// Score ranking: vertex ids by descending score, ties broken by id (stable).
std::vector<std::size_t> ranking(const std::vector<double>& scores) {
  std::vector<std::size_t> idx(scores.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::stable_sort(idx.begin(), idx.end(),
                   [&](std::size_t a, std::size_t b) { return scores[a] > scores[b]; });
  return idx;
}

}  // namespace

// --- differential: engine vs serial oracle, bit-exact across the ladder ------------

TEST(Betweenness, ExactBitExactAgainstSerialOracle) {
  nwtest::concurrency_guard guard;
  for (unsigned threads : nwtest::differential_thread_counts()) {
    nw::par::thread_pool::set_default_concurrency(threads);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    for (auto seed : nwtest::differential_seeds(0x0BE7'0000)) {
      NWHY_SEED_TRACE(seed);
      NWHypergraph hg(gen::arbitrary_hypergraph(seed));
      for (std::size_t s : {std::size_t{1}, std::size_t{2}}) {
        SCOPED_TRACE("s=" + std::to_string(s));
        auto lg  = hg.make_s_linegraph(s);
        auto adj = nwtest::csr_to_adjacency(lg.graph());
        EXPECT_EQ(lg.s_betweenness_centrality_batched(true), ref::betweenness(adj, true))
            << "normalized";
        EXPECT_EQ(lg.s_betweenness_centrality_batched(false), ref::betweenness(adj, false))
            << "unnormalized";
      }
    }
  }
}

TEST(Betweenness, SampledBitExactAgainstOracleOverReplayedSources) {
  nwtest::concurrency_guard guard;
  for (unsigned threads : nwtest::differential_thread_counts()) {
    nw::par::thread_pool::set_default_concurrency(threads);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    for (auto seed : nwtest::differential_seeds(0x0BE8'0000)) {
      NWHY_SEED_TRACE(seed);
      NWHypergraph hg(gen::arbitrary_hypergraph(seed));
      auto         lg  = hg.make_s_linegraph(1);
      auto         adj = nwtest::csr_to_adjacency(lg.graph());
      const auto   n   = lg.num_vertices();
      if (n == 0) continue;
      // The oracle replays the engine's seed-driven source list exactly.
      auto sources = betweenness_sample_sources(n, 8, seed);
      EXPECT_EQ(lg.s_betweenness_centrality_sampled(8, seed),
                ref::betweenness_sampled(adj, sources));
    }
  }
}

// --- batch size is a memory knob, never a semantics knob ---------------------------

TEST(Betweenness, BatchSizeNeverChangesScores) {
  nwtest::concurrency_guard guard;
  nw::par::thread_pool::set_default_concurrency(
      std::max(1u, std::thread::hardware_concurrency()));
  for (auto seed : nwtest::differential_seeds(0x0BE9'0000)) {
    NWHY_SEED_TRACE(seed);
    NWHypergraph hg(gen::arbitrary_hypergraph(seed));
    auto         lg       = hg.make_s_linegraph(1);
    auto         baseline = lg.s_betweenness_centrality_batched(false, 1);
    for (std::size_t batch : {std::size_t{2}, std::size_t{7}, std::size_t{1024}}) {
      EXPECT_EQ(lg.s_betweenness_centrality_batched(false, batch), baseline)
          << "batch=" << batch;
    }
  }
}

// --- planted closed forms ----------------------------------------------------------

TEST(Betweenness, PlantedPathMatchesClosedForm) {
  nwtest::concurrency_guard guard;
  for (unsigned threads : nwtest::differential_thread_counts()) {
    nw::par::thread_pool::set_default_concurrency(threads);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    for (auto seed : nwtest::differential_seeds(0x0BEA'0000)) {
      NWHY_SEED_TRACE(seed);
      auto plant = gen::planted_path_hypergraph(2 + seed % 9, seed);
      NWHypergraph hg(plant.el);
      auto         lg = hg.make_s_linegraph(plant.s);
      // Unnormalized halved scores: position i of an n-path separates
      // exactly i * (n - 1 - i) vertex pairs — exact small integers.
      EXPECT_EQ(lg.s_betweenness_centrality_batched(false), plant.scores);
    }
  }
}

TEST(Betweenness, PlantedStarMatchesClosedForm) {
  nwtest::concurrency_guard guard;
  for (unsigned threads : nwtest::differential_thread_counts()) {
    nw::par::thread_pool::set_default_concurrency(threads);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    for (auto seed : nwtest::differential_seeds(0x0BEB'0000)) {
      NWHY_SEED_TRACE(seed);
      auto plant = gen::planted_star_hypergraph(2 + seed % 8, seed);
      NWHypergraph hg(plant.el);
      auto         lg = hg.make_s_linegraph(plant.s);
      // The center carries C(num_leaves, 2); every leaf carries 0.
      EXPECT_EQ(lg.s_betweenness_centrality_batched(false), plant.scores);
    }
  }
}

TEST(Betweenness, Figure1LineGraphIsThePath) {
  NWHypergraph hg(nwtest::figure1_hypergraph());
  auto         lg = hg.make_s_linegraph(1);
  // Fig. 1 at s=1 is the path e0-e1-e2-e3: unnormalized halved scores
  // [0, 2, 2, 0].
  EXPECT_EQ(lg.s_betweenness_centrality_batched(false),
            (std::vector<double>{0.0, 2.0, 2.0, 0.0}));
}

// --- sampled determinism (ISSUE 10 satellite) --------------------------------------

TEST(Betweenness, SampledSameSeedSameThreadsIsBitIdentical) {
  nwtest::concurrency_guard guard;
  for (unsigned threads : nwtest::differential_thread_counts()) {
    nw::par::thread_pool::set_default_concurrency(threads);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    for (auto seed : nwtest::differential_seeds(0x0BEC'0000)) {
      NWHY_SEED_TRACE(seed);
      auto plant = gen::planted_path_hypergraph(9, seed);
      NWHypergraph hg(plant.el);
      auto         lg = hg.make_s_linegraph(1);
      auto         a  = lg.s_betweenness_centrality_sampled(5, seed);
      auto         b  = lg.s_betweenness_centrality_sampled(5, seed);
      EXPECT_EQ(a, b);
      // A different seed draws a different source set — on a path with all
      // distinct positions the scores almost surely differ; assert only
      // that the API threads the seed through at all.
      EXPECT_EQ(lg.s_betweenness_centrality_sampled(5, seed + 1),
                lg.s_betweenness_centrality_sampled(5, seed + 1));
    }
  }
}

TEST(Betweenness, SampledRankingStableAcrossThreadCounts) {
  nwtest::concurrency_guard guard;
  for (auto seed : nwtest::differential_seeds(0x0BED'0000)) {
    NWHY_SEED_TRACE(seed);
    auto plant = gen::planted_path_hypergraph(2 + seed % 11, seed);
    NWHypergraph hg(plant.el);
    auto         lg = hg.make_s_linegraph(1);

    nw::par::thread_pool::set_default_concurrency(1);
    auto baseline = lg.s_betweenness_centrality_sampled(6, seed);
    for (unsigned threads : nwtest::differential_thread_counts()) {
      nw::par::thread_pool::set_default_concurrency(threads);
      SCOPED_TRACE("threads=" + std::to_string(threads));
      auto scores = lg.s_betweenness_centrality_sampled(6, seed);
      // The satellite contract asks for identical ranking across thread
      // counts; the engine actually delivers the stronger bit-identity.
      EXPECT_EQ(ranking(scores), ranking(baseline));
      EXPECT_EQ(scores, baseline);
    }
  }
}

// --- edge cases --------------------------------------------------------------------

TEST(Betweenness, DegenerateGraphsYieldZeroScores) {
  biedgelist<> one;
  one.push_back(0, 0);
  NWHypergraph hg(one);
  auto         lg = hg.make_s_linegraph(1);
  EXPECT_EQ(lg.s_betweenness_centrality_batched(true), std::vector<double>(lg.num_vertices(), 0.0));
  // Sample counts clamp to n, so oversampling a tiny graph is well-defined.
  EXPECT_EQ(lg.s_betweenness_centrality_sampled(64, 7),
            std::vector<double>(lg.num_vertices(), 0.0));
}
