// tests/test_listing2_api.cpp — paper-fidelity integration test: the exact
// construction flow of the paper's Listing 2, from a MatrixMarket file to
// all four representations, using the same API spellings.
#include <gtest/gtest.h>

#include <sstream>

#include "nwhy.hpp"
#include "test_util.hpp"

using namespace nw::hypergraph;
using nw::vertex_id_t;

namespace {

std::string fig1_mm() {
  std::ostringstream out;
  auto               el = nwtest::figure1_hypergraph();
  el.sort_and_unique();
  write_matrix_market(out, el);
  return out.str();
}

}  // namespace

TEST(Listing2, FullConstructionFlow) {
  // //Hypergraph as a bipartite graph
  // biedgelist bi_el = graph_reader(mm_file);
  std::istringstream mm1(fig1_mm());
  biedgelist<>       bi_el = graph_reader(mm1);
  bi_el.sort_and_unique();

  // biadjacency<0> hyperedges(bi_el);
  // biadjacency<1> hypernodes(bi_el);
  biadjacency<0> hyperedges(bi_el);
  biadjacency<1> hypernodes(bi_el);
  EXPECT_EQ(hyperedges.size(), 4u);
  EXPECT_EQ(hypernodes.size(), 9u);

  // //Adjoin (hyper) graph indexed in one index set
  // size_t nrealedges = 0, nrealnodes = 0;
  // edge_list adjoin_el = graph_reader_adjoin(mm_file, nrealedges, nrealnodes);
  // adjacency<0> adjoin_graph(adjoin_el);
  std::size_t        nrealedges = 0, nrealnodes = 0;
  std::istringstream mm2(fig1_mm());
  auto               adjoin_el = graph_reader_adjoin(mm2, nrealedges, nrealnodes);
  adjoin_el.sort_and_unique();
  nw::graph::adjacency<> adjoin_graph(adjoin_el);
  EXPECT_EQ(nrealedges, 4u);
  EXPECT_EQ(nrealnodes, 9u);
  EXPECT_EQ(adjoin_graph.size(), 13u);

  // //Clique expansion graph of hypergraph
  // edgelist onelinegraph_els = to_two_graph_hashmap_cyclic(hypernodes,
  //     hyperedges, degrees(hypernodes), 1, num_threads, num_bins);
  auto node_degrees = hypernodes.degrees();
  auto onelinegraph_els =
      to_two_graph_hashmap_cyclic(hypernodes, hyperedges, node_degrees, 1, 4, 32);
  onelinegraph_els.symmetrize();
  onelinegraph_els.sort_and_unique();
  nw::graph::adjacency<> clique_expansion_graph(onelinegraph_els, hypernodes.size());
  EXPECT_EQ(clique_expansion_graph.num_edges(), 28u);  // 14 undirected

  // //s-line graph of hypergraph for a given s
  // edgelist slinegraph_els = to_two_graph_hashmap_cyclic(hyperedges,
  //     hypernodes, degrees(hyperedges), s, num_threads, num_bins);
  auto edge_degrees = hyperedges.degrees();
  for (std::size_t s : {1, 2, 3}) {
    auto slinegraph_els =
        to_two_graph_hashmap_cyclic(hyperedges, hypernodes, edge_degrees, s, 4, 32);
    std::size_t expected = s == 1 ? 3u : (s == 2 ? 1u : 0u);
    EXPECT_EQ(slinegraph_els.size(), expected) << "s=" << s;
    slinegraph_els.symmetrize();
    slinegraph_els.sort_and_unique();
    nw::graph::adjacency<> slinegraph(slinegraph_els, hyperedges.size());
    EXPECT_EQ(slinegraph.size(), 4u);
  }
}

TEST(Listing2, AdjoinGraphRunsPlainGraphAlgorithms) {
  // The payoff claimed in Sec. III-B.2: any graph algorithm computes
  // hypergraph metrics on the adjoin graph, then results are split.
  std::istringstream mm(fig1_mm());
  std::size_t        ne = 0, nv = 0;
  auto               adjoin_el = graph_reader_adjoin(mm, ne, nv);
  adjoin_el.sort_and_unique();
  nw::graph::adjacency<> g(adjoin_el);

  auto labels   = nw::graph::cc_afforest(g);          // plain graph CC
  auto [le, ln] = split_results(labels, ne);          // split per class
  EXPECT_EQ(le.size(), 4u);
  EXPECT_EQ(ln.size(), 9u);
  for (auto l : le) EXPECT_EQ(l, le[0]);  // Fig. 1 is one component

  auto parents  = nw::graph::bfs_direction_optimizing(g, 0);  // plain BFS
  auto [pe, pn] = split_results(parents, ne);
  EXPECT_EQ(pe[0], 0u);
  for (auto p : pn) EXPECT_NE(p, nw::null_vertex<>);
}

TEST(Listing2, DualCliqueGraphEqualsDualityClaim) {
  // "The 1-line graph of the dual hypergraph is the clique-expansion graph
  // of the original hypergraph" (Sec. III-B.4).
  auto el = nwtest::figure1_hypergraph();
  el.sort_and_unique();
  NWHypergraph hg(el);
  auto         dual = hg.dual();

  auto clique_orig = hg.clique_expansion_graph();
  auto line_dual   = dual.make_s_linegraph(1, /*edges=*/true);
  EXPECT_EQ(clique_orig.size(), line_dual.num_vertices());
  EXPECT_EQ(clique_orig.num_edges() / 2, line_dual.num_edges());
  for (std::size_t v = 0; v < clique_orig.size(); ++v) {
    EXPECT_EQ(clique_orig.degree(v), line_dual.s_degree(static_cast<vertex_id_t>(v)));
  }
}

TEST(Listing2, DualIncidenceMatrixIsTranspose) {
  // Section II-C: the dual's incidence matrix is Bᵗ — spot-check the
  // worked example the paper prints for Fig. 1a's dual.
  auto el = nwtest::figure1_hypergraph();
  el.sort_and_unique();
  NWHypergraph hg(el);
  auto         dual = hg.dual();
  // In H*, hyperedges are the original hypernodes: v1 joins {e0, e1}.
  const auto&              star_edges = dual.hyperedges();
  std::vector<vertex_id_t> v1(star_edges[1].begin(), star_edges[1].end());
  EXPECT_EQ(v1, (std::vector<vertex_id_t>{0, 1}));
  // And v6 joins {e2, e3}.
  std::vector<vertex_id_t> v6(star_edges[6].begin(), star_edges[6].end());
  EXPECT_EQ(v6, (std::vector<vertex_id_t>{2, 3}));
}
