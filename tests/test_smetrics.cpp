// tests/test_smetrics.cpp — the s_linegraph metric facade (Listing 5):
// s-components, s-distance/s-path, s-centralities, s-eccentricity.
#include <gtest/gtest.h>

#include "nwhy/nwhypergraph.hpp"
#include "test_util.hpp"

using namespace nw::hypergraph;
using nw::vertex_id_t;

namespace {

NWHypergraph figure1() { return NWHypergraph(nwtest::figure1_hypergraph()); }

}  // namespace

TEST(SMetrics, Figure1OneLineGraphShape) {
  auto lg = figure1().make_s_linegraph(1);
  EXPECT_EQ(lg.num_vertices(), 4u);
  EXPECT_EQ(lg.num_edges(), 3u);  // the path e0-e1-e2-e3
  EXPECT_EQ(lg.s_degree(0), 1u);
  EXPECT_EQ(lg.s_degree(1), 2u);
  EXPECT_EQ(lg.s_neighbors(1), (std::vector<vertex_id_t>{0, 2}));
}

TEST(SMetrics, Figure1Connectivity) {
  auto hg = figure1();
  EXPECT_TRUE(hg.make_s_linegraph(1).is_s_connected());
  EXPECT_FALSE(hg.make_s_linegraph(2).is_s_connected());
}

TEST(SMetrics, Figure1DistanceAndPath) {
  auto lg = figure1().make_s_linegraph(1);
  auto d  = lg.s_distance(0, 3);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, 3u);
  EXPECT_EQ(lg.s_path(0, 3), (std::vector<vertex_id_t>{0, 1, 2, 3}));
  EXPECT_EQ(lg.s_path(2, 2), (std::vector<vertex_id_t>{2}));
}

TEST(SMetrics, UnreachablePairs) {
  auto lg = figure1().make_s_linegraph(2);  // only e0-e1 survives
  EXPECT_FALSE(lg.s_distance(0, 3).has_value());
  EXPECT_TRUE(lg.s_path(0, 3).empty());
  auto d = lg.s_distance(0, 1);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, 1u);
}

TEST(SMetrics, ComponentsMarkInactiveAsNull) {
  auto hg     = figure1();
  auto lg     = hg.make_s_linegraph(4);  // only e1 has >= 4 hypernodes
  auto labels = lg.s_connected_components();
  EXPECT_EQ(labels[0], nw::null_vertex<>);
  EXPECT_NE(labels[1], nw::null_vertex<>);
  EXPECT_EQ(labels[2], nw::null_vertex<>);
  EXPECT_EQ(labels[3], nw::null_vertex<>);
  // A single active vertex counts as s-connected.
  EXPECT_TRUE(lg.is_s_connected());
}

TEST(SMetrics, NoActiveVerticesIsNotConnected) {
  auto lg = figure1().make_s_linegraph(10);
  EXPECT_FALSE(lg.is_s_connected());
}

TEST(SMetrics, ComponentLabelsPartitionThePath) {
  auto lg     = figure1().make_s_linegraph(1);
  auto labels = lg.s_connected_components();
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[1], labels[2]);
  EXPECT_EQ(labels[2], labels[3]);
}

TEST(SMetrics, BetweennessOfLinePath) {
  // The 1-line graph of Fig. 1 is the path e0-e1-e2-e3; unnormalized BC of
  // a 4-path is [0, 2, 2, 0].
  auto bc = figure1().make_s_linegraph(1).s_betweenness_centrality(/*normalized=*/false);
  EXPECT_DOUBLE_EQ(bc[0], 0.0);
  EXPECT_DOUBLE_EQ(bc[1], 2.0);
  EXPECT_DOUBLE_EQ(bc[2], 2.0);
  EXPECT_DOUBLE_EQ(bc[3], 0.0);
}

TEST(SMetrics, ClosenessOfLinePath) {
  auto c = figure1().make_s_linegraph(1).s_closeness_centrality();
  EXPECT_NEAR(c[0], 3.0 / 6.0, 1e-12);
  EXPECT_NEAR(c[1], 3.0 / 4.0, 1e-12);
  EXPECT_NEAR(figure1().make_s_linegraph(1).s_closeness_centrality(1), c[1], 1e-12);
}

TEST(SMetrics, HarmonicClosenessOfLinePath) {
  auto h = figure1().make_s_linegraph(1).s_harmonic_closeness_centrality();
  EXPECT_NEAR(h[0], 1.0 + 0.5 + 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(h[1], 1.0 + 1.0 + 0.5, 1e-12);
}

TEST(SMetrics, EccentricityOfLinePath) {
  auto lg = figure1().make_s_linegraph(1);
  auto e  = lg.s_eccentricity();
  EXPECT_EQ(e[0], 3u);
  EXPECT_EQ(e[1], 2u);
  EXPECT_EQ(lg.s_eccentricity(3), 3u);
}

// --- property checks on generated hypergraphs -------------------------------------

class SMetricsProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SMetricsProperty, PathIsValidSWalk) {
  std::size_t  s  = GetParam();
  NWHypergraph hg(gen::uniform_random_hypergraph(60, 50, 6, 0xD00D));
  auto         lg = hg.make_s_linegraph(s);
  for (vertex_id_t src : {0u, 5u, 11u}) {
    for (vertex_id_t dst : {3u, 20u, 40u}) {
      auto path = lg.s_path(src, dst);
      auto dist = lg.s_distance(src, dst);
      if (path.empty()) {
        EXPECT_FALSE(dist.has_value());
        continue;
      }
      ASSERT_TRUE(dist.has_value());
      EXPECT_EQ(path.size(), *dist + 1);
      EXPECT_EQ(path.front(), src);
      EXPECT_EQ(path.back(), dst);
      // Consecutive path members must be s-adjacent.
      for (std::size_t k = 0; k + 1 < path.size(); ++k) {
        auto nbrs = lg.s_neighbors(path[k]);
        EXPECT_NE(std::find(nbrs.begin(), nbrs.end(), path[k + 1]), nbrs.end());
      }
    }
  }
}

TEST_P(SMetricsProperty, DistanceIsSymmetric) {
  std::size_t  s = GetParam();
  NWHypergraph hg(gen::powerlaw_hypergraph(50, 40, 15, 1.5, 1.0, 0xD11D));
  auto         lg = hg.make_s_linegraph(s);
  for (vertex_id_t a : {0u, 7u, 23u}) {
    for (vertex_id_t b : {2u, 14u, 40u}) {
      EXPECT_EQ(lg.s_distance(a, b), lg.s_distance(b, a));
    }
  }
}

TEST_P(SMetricsProperty, ComponentsConsistentWithDistances) {
  std::size_t  s = GetParam();
  NWHypergraph hg(gen::planted_community_hypergraph(40, 80, 20, 1.4, 0.3, 0xD22D));
  auto         lg     = hg.make_s_linegraph(s);
  auto         labels = lg.s_connected_components();
  for (vertex_id_t a = 0; a < 10; ++a) {
    for (vertex_id_t b = 0; b < 10; ++b) {
      if (!lg.is_active(a) || !lg.is_active(b)) continue;
      bool same_comp = labels[a] == labels[b];
      bool reachable = lg.s_distance(a, b).has_value();
      EXPECT_EQ(same_comp, reachable) << "a=" << a << " b=" << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SValues, SMetricsProperty, ::testing::Values(1, 2, 3));

// --- random s-walks (Aksoy et al.'s primitive) ---------------------------------------

TEST(SWalk, StepsAreSAdjacent) {
  NWHypergraph hg(gen::uniform_random_hypergraph(60, 50, 5, 0xA17));
  for (std::size_t s : {1, 2}) {
    auto lg   = hg.make_s_linegraph(s);
    auto walk = lg.random_s_walk(0, 25, /*seed=*/7);
    ASSERT_FALSE(walk.empty());
    EXPECT_EQ(walk.front(), 0u);
    for (std::size_t k = 0; k + 1 < walk.size(); ++k) {
      auto nbrs = lg.s_neighbors(walk[k]);
      EXPECT_NE(std::find(nbrs.begin(), nbrs.end(), walk[k + 1]), nbrs.end())
          << "step " << k << " s=" << s;
    }
  }
}

TEST(SWalk, StopsAtIsolatedVertex) {
  auto lg   = figure1().make_s_linegraph(10);  // edgeless line graph
  auto walk = lg.random_s_walk(2, 100);
  EXPECT_EQ(walk, (std::vector<vertex_id_t>{2}));
}

TEST(SWalk, DeterministicPerSeed) {
  NWHypergraph hg(gen::powerlaw_hypergraph(40, 30, 10, 1.4, 1.0, 0xA));
  auto         lg = hg.make_s_linegraph(1);
  EXPECT_EQ(lg.random_s_walk(0, 50, 3), lg.random_s_walk(0, 50, 3));
}

TEST(SWalk, LongWalkOnPathStaysInside) {
  auto lg   = figure1().make_s_linegraph(1);  // path e0-e1-e2-e3
  auto walk = lg.random_s_walk(1, 200, 11);
  EXPECT_EQ(walk.size(), 201u);  // no dead ends on a path's interior... ends bounce back
  for (auto v : walk) EXPECT_LT(v, 4u);
}

// --- s-clique graph (dual direction, edges=false) -----------------------------------

TEST(SCliqueGraph, OneCliqueGraphEqualsCliqueExpansion) {
  auto hg = figure1();
  auto cg = hg.make_s_linegraph(1, /*edges=*/false);
  EXPECT_EQ(cg.num_vertices(), 9u);
  EXPECT_EQ(cg.num_edges(), 14u);  // matches the clique-expansion count
  auto ce = hg.clique_expansion_graph();
  EXPECT_EQ(cg.num_edges() * 2, ce.num_edges());
}

TEST(SCliqueGraph, DualOfDualIsOriginal) {
  auto hg   = figure1();
  auto dual = hg.dual();
  EXPECT_EQ(dual.num_hyperedges(), hg.num_hypernodes());
  EXPECT_EQ(dual.num_hypernodes(), hg.num_hyperedges());
  auto back = dual.dual();
  EXPECT_EQ(back.num_hyperedges(), hg.num_hyperedges());
  EXPECT_EQ(back.num_incidences(), hg.num_incidences());
  // 1-line graph of the dual == 1-clique graph of the original.
  auto a = dual.make_s_linegraph(1, /*edges=*/true);
  auto b = hg.make_s_linegraph(1, /*edges=*/false);
  EXPECT_EQ(a.num_edges(), b.num_edges());
}

// --- single-vertex overloads: agreement with the all-vertices sweeps ----------------
//
// The (v) overloads used to be the O(n·(n+m)) all-sources sweep indexed at
// one element; they are now one BFS from v.  These tests pin the contract
// that both spellings agree everywhere, on a hypergraph with several
// components and inactive vertices (s=2 disconnects parts of it).

TEST(SMetricsSingleVertex, AgreesWithFullSweepOnGeneratedHypergraph) {
  NWHypergraph hg(gen::powerlaw_hypergraph(50, 40, 12, 1.5, 1.0, 0xC105));
  for (std::size_t s : {1, 2}) {
    auto lg  = hg.make_s_linegraph(s);
    auto cl  = lg.s_closeness_centrality();
    auto hc  = lg.s_harmonic_closeness_centrality();
    auto ecc = lg.s_eccentricity();
    ASSERT_EQ(cl.size(), lg.num_vertices());
    for (vertex_id_t v = 0; v < lg.num_vertices(); ++v) {
      EXPECT_NEAR(lg.s_closeness_centrality(v), cl[v], 1e-12) << "v=" << v << " s=" << s;
      EXPECT_NEAR(lg.s_harmonic_closeness_centrality(v), hc[v], 1e-12) << "v=" << v << " s=" << s;
      EXPECT_EQ(lg.s_eccentricity(v), ecc[v]) << "v=" << v << " s=" << s;
    }
  }
}

TEST(SMetricsSingleVertex, IsolatedVertexValues) {
  auto lg = figure1().make_s_linegraph(10);  // edgeless line graph
  EXPECT_DOUBLE_EQ(lg.s_closeness_centrality(0), 0.0);
  EXPECT_DOUBLE_EQ(lg.s_harmonic_closeness_centrality(0), 0.0);
  EXPECT_EQ(lg.s_eccentricity(0), 0u);
}

// --- bounds checking: point queries reject out-of-range ids -------------------------

TEST(SMetricsBounds, PointQueriesThrowOutOfRange) {
  auto lg  = figure1().make_s_linegraph(1);  // 4 vertices: ids 0..3
  auto bad = static_cast<vertex_id_t>(lg.num_vertices());
  EXPECT_THROW((void)lg.s_degree(bad), std::out_of_range);
  EXPECT_THROW((void)lg.s_neighbors(bad), std::out_of_range);
  EXPECT_THROW((void)lg.s_distance(bad, 0), std::out_of_range);
  EXPECT_THROW((void)lg.s_distance(0, bad), std::out_of_range);
  EXPECT_THROW((void)lg.s_path(bad, 0), std::out_of_range);
  EXPECT_THROW((void)lg.s_path(0, bad), std::out_of_range);
  EXPECT_THROW((void)lg.s_closeness_centrality(bad), std::out_of_range);
  EXPECT_THROW((void)lg.s_harmonic_closeness_centrality(bad), std::out_of_range);
  EXPECT_THROW((void)lg.s_eccentricity(bad), std::out_of_range);
  EXPECT_THROW((void)lg.s_degree(nw::null_vertex<>), std::out_of_range);
}

TEST(SMetricsBounds, InRangeIdsDoNotThrow) {
  auto lg = figure1().make_s_linegraph(1);
  EXPECT_NO_THROW((void)lg.s_degree(3));
  EXPECT_NO_THROW((void)lg.s_neighbors(3));
  EXPECT_NO_THROW((void)lg.s_distance(3, 0));
  EXPECT_NO_THROW((void)lg.s_eccentricity(3));
}
