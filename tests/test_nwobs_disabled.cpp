// tests/test_nwobs_disabled.cpp — compiled with -DNWHY_OBS=0 (see
// tests/CMakeLists.txt): every NWOBS_* macro must expand to nothing, so
// running the instrumented algorithms leaves the registry empty.  This is
// the compile-time-no-op half of the observability contract; the enabled
// half lives in test_nwobs.cpp.
#ifndef NWHY_OBS
#error "this test must be compiled with -DNWHY_OBS=0"
#endif
#if NWHY_OBS
#error "this test must be compiled with -DNWHY_OBS=0"
#endif

#include <gtest/gtest.h>

#include "nwhy.hpp"
#include "test_util.hpp"

using namespace nw::hypergraph;
using nw::obs::registry;

TEST(NwobsDisabled, MacrosCompileToNothing) {
  registry::get().reset();
  NWOBS_COUNT("disabled.counter", 0, 1);
  NWOBS_GAUGE_SET("disabled.gauge", 5);
  NWOBS_GAUGE_MAX("disabled.gauge", 9);
  { NWOBS_SCOPE_TIMER("disabled.timer"); }
  EXPECT_TRUE(registry::get().counters_snapshot().empty());
  EXPECT_TRUE(registry::get().timers_snapshot().empty());
}

TEST(NwobsDisabled, InstrumentedAlgorithmsEmitNothing) {
  registry::get().reset();
  NWHypergraph hg(nwtest::figure1_hypergraph());
  (void)hg.bfs(0);
  (void)hg.bfs_adjoin(0);
  (void)hg.make_s_linegraph(1);
  (void)hg.toplexes();
  EXPECT_TRUE(registry::get().counters_snapshot().empty());
  EXPECT_TRUE(registry::get().timers_snapshot().empty());
}

TEST(NwobsDisabled, ProfileStillSerializesValidEmptySections) {
  // Export machinery keeps working in a disabled build — profiles just have
  // empty counters/timers sections.
  registry::get().reset();
  std::string json = nw::obs::profile_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"timers\""), std::string::npos);
  EXPECT_NE(json.find("\"env\""), std::string::npos);
  EXPECT_NE(json.find("\"threads\""), std::string::npos);
}

TEST(NwobsDisabled, AlgorithmResultsUnchanged) {
  // Instrumentation must not affect results: the same Fig. 1 invariants the
  // enabled-mode tests rely on hold in the stripped build.
  NWHypergraph hg(nwtest::figure1_hypergraph());
  auto lg = hg.make_s_linegraph(1);
  EXPECT_EQ(lg.num_vertices(), 4u);
  EXPECT_EQ(lg.num_edges(), 3u);
  EXPECT_EQ(hg.toplexes().size(), 4u);
  EXPECT_EQ(hg.bfs(0).dist_edge[3], 6u);  // bipartite hops: hyperedges at even depths
}
