// tests/test_hyper_algorithms.cpp — the exact hypergraph algorithms:
// HyperBFS (3 engines), HyperCC, AdjoinBFS, AdjoinCC (2 engines), and the
// Hygra baseline; all cross-checked against each other and against serial
// references on the adjoin graph.
#include <gtest/gtest.h>

#include <atomic>

#include "hygra/algorithms.hpp"
#include "nwhy/algorithms/adjoin_algorithms.hpp"
#include "nwhy/algorithms/hyper_bfs.hpp"
#include "nwhy/algorithms/hyper_cc.hpp"
#include "nwhy/gen/generators.hpp"
#include "test_util.hpp"

using namespace nw::hypergraph;
using nw::vertex_id_t;
using nwtest::same_partition;

namespace {

struct hypergraph_fixture {
  biedgelist<>   el;
  biadjacency<0> hyperedges;
  biadjacency<1> hypernodes;
  adjoin_graph   adjoin;

  explicit hypergraph_fixture(biedgelist<> input) {
    input.sort_and_unique();
    el         = std::move(input);
    hyperedges = biadjacency<0>(el);
    hypernodes = biadjacency<1>(el);
    adjoin     = make_adjoin_graph(el);
  }
};

/// Reference distances on the adjoin graph from hyperedge `src`: even depths
/// are hyperedges, odd depths hypernodes.
std::pair<std::vector<vertex_id_t>, std::vector<vertex_id_t>> reference_hyper_distances(
    const hypergraph_fixture& h, vertex_id_t src) {
  auto dist = nwtest::reference_bfs_distances(h.adjoin.graph, src);
  auto [de, dn] = split_results(dist, h.adjoin.nrealedges);
  return {de, dn};
}

biedgelist<> medium_random_hypergraph(std::uint64_t seed) {
  return gen::uniform_random_hypergraph(120, 150, 4, seed);
}

biedgelist<> sparse_random_hypergraph(std::uint64_t seed) {
  // Very sparse: guaranteed multiple connected components.
  return gen::uniform_random_hypergraph(60, 400, 2, seed);
}

}  // namespace

// --- HyperBFS engines --------------------------------------------------------

class HyperBfsParam : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HyperBfsParam, TopDownMatchesAdjoinReference) {
  hypergraph_fixture h(medium_random_hypergraph(GetParam()));
  auto               r = hyper_bfs_top_down(h.hyperedges, h.hypernodes, 0);
  auto [de, dn]        = reference_hyper_distances(h, 0);
  EXPECT_EQ(r.dist_edge, de);
  EXPECT_EQ(r.dist_node, dn);
}

TEST_P(HyperBfsParam, BottomUpMatchesAdjoinReference) {
  hypergraph_fixture h(medium_random_hypergraph(GetParam()));
  auto               r = hyper_bfs_bottom_up(h.hyperedges, h.hypernodes, 0);
  auto [de, dn]        = reference_hyper_distances(h, 0);
  EXPECT_EQ(r.dist_edge, de);
  EXPECT_EQ(r.dist_node, dn);
}

TEST_P(HyperBfsParam, DirectionOptimizingMatchesAdjoinReference) {
  hypergraph_fixture h(medium_random_hypergraph(GetParam()));
  auto               r = hyper_bfs(h.hyperedges, h.hypernodes, 0);
  auto [de, dn]        = reference_hyper_distances(h, 0);
  EXPECT_EQ(r.dist_edge, de);
  EXPECT_EQ(r.dist_node, dn);
}

TEST_P(HyperBfsParam, SparseInputsLeaveUnreachedEntities) {
  hypergraph_fixture h(sparse_random_hypergraph(GetParam()));
  auto               r = hyper_bfs(h.hyperedges, h.hypernodes, 0);
  auto [de, dn]        = reference_hyper_distances(h, 0);
  EXPECT_EQ(r.dist_edge, de);
  EXPECT_EQ(r.dist_node, dn);
  // Sanity: the generator left some hypernode out of e0's component.
  EXPECT_NE(std::count(de.begin(), de.end(), nw::null_vertex<>), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HyperBfsParam, ::testing::Values(1, 2, 3, 4, 5));

TEST(HyperBfs, Figure1Depths) {
  hypergraph_fixture h(nwtest::figure1_hypergraph());
  auto               r = hyper_bfs(h.hyperedges, h.hypernodes, 0);
  EXPECT_EQ(r.dist_edge, (std::vector<vertex_id_t>{0, 2, 4, 6}));
  // v0..v8 depths: members of e0 at 1; v3, v4 at 3; v5, v6 at 5; v7, v8 at 7.
  EXPECT_EQ(r.dist_node, (std::vector<vertex_id_t>{1, 1, 1, 3, 3, 5, 5, 7, 7}));
}

TEST(HyperBfs, ParentsFormValidForest) {
  hypergraph_fixture h(medium_random_hypergraph(42));
  auto               r = hyper_bfs(h.hyperedges, h.hypernodes, 0);
  EXPECT_EQ(r.parents_edge[0], 0u);
  for (std::size_t v = 0; v < r.parents_node.size(); ++v) {
    if (r.parents_node[v] == nw::null_vertex<>) continue;
    // A hypernode's parent is a hyperedge one level up that contains it.
    vertex_id_t pe = r.parents_node[v];
    EXPECT_EQ(r.dist_edge[pe] + 1, r.dist_node[v]);
    auto nbrs = h.hypernodes[v];
    EXPECT_NE(std::find(nbrs.begin(), nbrs.end(), pe), nbrs.end());
  }
  for (std::size_t e = 1; e < r.parents_edge.size(); ++e) {
    if (r.parents_edge[e] == nw::null_vertex<>) continue;
    vertex_id_t pv = r.parents_edge[e];
    EXPECT_EQ(r.dist_node[pv] + 1, r.dist_edge[e]);
    auto nbrs = h.hyperedges[e];
    EXPECT_NE(std::find(nbrs.begin(), nbrs.end(), pv), nbrs.end());
  }
}

// --- AdjoinBFS ----------------------------------------------------------------

class AdjoinBfsParam : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AdjoinBfsParam, DistancesMatchReference) {
  hypergraph_fixture h(medium_random_hypergraph(GetParam() + 100));
  auto [de, dn] = adjoin_bfs_distances(h.adjoin, 0);
  auto [re, rn] = reference_hyper_distances(h, 0);
  EXPECT_EQ(de, re);
  EXPECT_EQ(dn, rn);
}

TEST_P(AdjoinBfsParam, ReachesSameSetAsHyperBfs) {
  hypergraph_fixture h(sparse_random_hypergraph(GetParam() + 200));
  auto               a = adjoin_bfs(h.adjoin, 0);
  auto               b = hyper_bfs(h.hyperedges, h.hypernodes, 0);
  for (std::size_t e = 0; e < a.parents_edge.size(); ++e) {
    EXPECT_EQ(a.parents_edge[e] == nw::null_vertex<>, b.parents_edge[e] == nw::null_vertex<>);
  }
  for (std::size_t v = 0; v < a.parents_node.size(); ++v) {
    EXPECT_EQ(a.parents_node[v] == nw::null_vertex<>, b.parents_node[v] == nw::null_vertex<>);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdjoinBfsParam, ::testing::Values(1, 2, 3));

TEST(AdjoinBfs, RejectsHypernodeSource) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  hypergraph_fixture h(nwtest::figure1_hypergraph());
  EXPECT_DEATH(adjoin_bfs(h.adjoin, 4), "hyperedge id");
}

// --- HyperCC / AdjoinCC / HygraCC ----------------------------------------------

class CcEquivalenceParam : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CcEquivalenceParam, AllEnginesInduceSamePartition) {
  hypergraph_fixture h(sparse_random_hypergraph(GetParam() + 300));

  auto hyper = hyper_cc(h.hyperedges, h.hypernodes);
  auto aff   = adjoin_cc(h.adjoin, adjoin_cc_engine::afforest);
  auto lp    = adjoin_cc(h.adjoin, adjoin_cc_engine::label_propagation);
  auto hygra = nw::hygra::hygra_cc(h.hyperedges, h.hypernodes);

  // Compare as one combined partition over [edges ++ nodes].
  auto combine = [](const std::vector<vertex_id_t>& e, const std::vector<vertex_id_t>& n) {
    std::vector<vertex_id_t> all(e);
    all.insert(all.end(), n.begin(), n.end());
    return all;
  };
  auto ref = nwtest::reference_components(h.adjoin.graph);
  EXPECT_TRUE(same_partition(combine(hyper.labels_edge, hyper.labels_node), ref));
  EXPECT_TRUE(same_partition(combine(aff.labels_edge, aff.labels_node), ref));
  EXPECT_TRUE(same_partition(combine(lp.labels_edge, lp.labels_node), ref));
  EXPECT_TRUE(same_partition(combine(hygra.labels_edge, hygra.labels_node), ref));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CcEquivalenceParam, ::testing::Values(7, 17, 27, 37));

TEST(HyperCc, Figure1IsOneComponent) {
  hypergraph_fixture h(nwtest::figure1_hypergraph());
  auto               r = hyper_cc(h.hyperedges, h.hypernodes);
  for (auto l : r.labels_edge) EXPECT_EQ(l, r.labels_edge[0]);
  for (auto l : r.labels_node) EXPECT_EQ(l, r.labels_edge[0]);
}

TEST(HyperCc, DisjointEdgesStaySeparate) {
  biedgelist<> el;
  el.push_back(0, 0);
  el.push_back(0, 1);
  el.push_back(1, 2);
  el.push_back(1, 3);
  hypergraph_fixture h(std::move(el));
  auto               r = hyper_cc(h.hyperedges, h.hypernodes);
  EXPECT_NE(r.labels_edge[0], r.labels_edge[1]);
  EXPECT_EQ(r.labels_node[0], r.labels_node[1]);
  EXPECT_EQ(r.labels_node[2], r.labels_node[3]);
  EXPECT_NE(r.labels_node[0], r.labels_node[2]);
}

TEST(HyperCc, IsolatedHypernodeKeepsOwnLabel) {
  biedgelist<> el(1, 3);  // v2 is isolated
  el.push_back(0, 0);
  el.push_back(0, 1);
  hypergraph_fixture h(std::move(el));
  auto               r = hyper_cc(h.hyperedges, h.hypernodes);
  EXPECT_EQ(r.labels_node[0], r.labels_node[1]);
  EXPECT_NE(r.labels_node[2], r.labels_node[0]);
}

// --- Hygra baseline -------------------------------------------------------------

class HygraParam : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HygraParam, BfsReachesSameSetAsHyperBfs) {
  hypergraph_fixture h(sparse_random_hypergraph(GetParam() + 400));
  auto               a = nw::hygra::hygra_bfs(h.hyperedges, h.hypernodes, 0);
  auto               b = hyper_bfs_top_down(h.hyperedges, h.hypernodes, 0);
  for (std::size_t e = 0; e < a.parents_edge.size(); ++e) {
    EXPECT_EQ(a.parents_edge[e] == nw::null_vertex<>, b.parents_edge[e] == nw::null_vertex<>);
  }
  for (std::size_t v = 0; v < a.parents_node.size(); ++v) {
    EXPECT_EQ(a.parents_node[v] == nw::null_vertex<>, b.parents_node[v] == nw::null_vertex<>);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HygraParam, ::testing::Values(1, 2, 3));

TEST(Hygra, VertexSubsetBasics) {
  nw::hygra::vertex_subset empty;
  EXPECT_TRUE(empty.empty());
  nw::hygra::vertex_subset single(5u);
  EXPECT_EQ(single.size(), 1u);
  EXPECT_EQ(single.ids()[0], 5u);
}

TEST(Hygra, VertexMapVisitsAllMembers) {
  nw::hygra::vertex_subset subset(std::vector<vertex_id_t>{2, 5, 9});
  std::vector<std::atomic<int>> hits(10);
  nw::hygra::vertex_map(subset, [&](vertex_id_t v) { hits[v].fetch_add(1); });
  for (std::size_t v = 0; v < 10; ++v) {
    EXPECT_EQ(hits[v].load(), (v == 2 || v == 5 || v == 9) ? 1 : 0);
  }
}

TEST(Hygra, EdgeMapOnEmptyFrontierIsEmpty) {
  auto el = nwtest::figure1_hypergraph();
  el.sort_and_unique();
  biadjacency<0>           hyperedges(el);
  nw::hygra::vertex_subset empty;
  auto out = nw::hygra::edge_map(
      hyperedges, empty, [](vertex_id_t, vertex_id_t) { return true; },
      [](vertex_id_t) { return true; });
  EXPECT_TRUE(out.empty());
}

TEST(Hygra, EdgeMapAppliesCondAndUpdate) {
  auto el = nwtest::figure1_hypergraph();
  el.sort_and_unique();
  biadjacency<0> hyperedges(el);
  nw::hygra::vertex_subset frontier(0u);  // e0 = {v0, v1, v2}
  std::vector<int>         touched(9, 0);
  auto out = nw::hygra::edge_map(
      hyperedges, frontier,
      [&](vertex_id_t, vertex_id_t v) {
        touched[v] = 1;
        return v != 1;  // drop v1 from the output subset
      },
      [](vertex_id_t v) { return v != 2; });  // never visit v2
  EXPECT_EQ(touched[0], 1);
  EXPECT_EQ(touched[1], 1);
  EXPECT_EQ(touched[2], 0);
  std::vector<vertex_id_t> ids(out.begin(), out.end());
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<vertex_id_t>{0}));
}
