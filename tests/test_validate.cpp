// tests/test_validate.cpp — the non-aborting structural validator, plus an
// exhaustive small-graph cross-check of Brandes betweenness against a
// brute-force all-pairs shortest-path counter.
#include <gtest/gtest.h>

#include "nwgraph/algorithms/betweenness.hpp"
#include "nwhy/validate.hpp"
#include "test_util.hpp"

using namespace nw::hypergraph;
using nw::vertex_id_t;

TEST(Validate, CanonicalInputPasses) {
  auto el = nwtest::figure1_hypergraph();
  el.sort_and_unique();
  auto r = validate(el);
  EXPECT_TRUE(r.canonical());
  EXPECT_EQ(r.empty_hyperedges, 0u);
  EXPECT_EQ(r.isolated_nodes, 0u);
}

TEST(Validate, DetectsUnsorted) {
  biedgelist<> el;
  el.push_back(1, 0);
  el.push_back(0, 0);
  auto r = validate(el);
  EXPECT_FALSE(r.canonical_order);
  EXPECT_TRUE(r.no_duplicates);
  EXPECT_FALSE(r.canonical());
}

TEST(Validate, DetectsDuplicates) {
  biedgelist<> el;
  el.push_back(0, 0);
  el.push_back(0, 0);
  auto r = validate(el);
  EXPECT_FALSE(r.no_duplicates);
  EXPECT_TRUE(r.canonical_order);
}

TEST(Validate, CountsEmptyAndIsolated) {
  biedgelist<> el(5, 6);  // declared larger than used
  el.push_back(0, 0);
  el.push_back(2, 3);
  auto r = validate(el);
  EXPECT_EQ(r.empty_hyperedges, 3u);  // e1, e3, e4
  EXPECT_EQ(r.isolated_nodes, 4u);    // v1, v2, v4, v5
}

TEST(Validate, ReportStringMentionsProblems) {
  biedgelist<> el;
  el.push_back(1, 0);
  el.push_back(0, 0);
  auto s = validate(el).to_string();
  EXPECT_NE(s.find("NOT SORTED"), std::string::npos);
}

// --- exhaustive betweenness cross-check ---------------------------------------------

namespace {

/// Brute-force betweenness: enumerate all shortest paths by BFS-counting
/// from every source, O(n * m) with explicit pair accumulation.
std::vector<double> brute_force_bc(const nw::graph::adjacency<>& g) {
  const std::size_t   n = g.size();
  std::vector<double> bc(n, 0.0);
  for (vertex_id_t s = 0; s < n; ++s) {
    for (vertex_id_t t = 0; t < n; ++t) {
      if (s >= t) continue;
      // Count shortest s-t paths through each vertex via two BFS passes.
      auto ds = nwtest::reference_bfs_distances(g, s);
      auto dt = nwtest::reference_bfs_distances(g, t);
      if (ds[t] == nw::null_vertex<>) continue;
      // sigma counts via DP in distance order from s.
      std::vector<double>      sigma_s(n, 0.0), sigma_t(n, 0.0);
      std::vector<vertex_id_t> order(n);
      for (vertex_id_t v = 0; v < n; ++v) order[v] = v;
      std::sort(order.begin(), order.end(),
                [&](vertex_id_t a, vertex_id_t b) { return ds[a] < ds[b]; });
      sigma_s[s] = 1;
      for (auto v : order) {
        if (ds[v] == nw::null_vertex<> || v == s) continue;
        for (auto&& e : g[v]) {
          vertex_id_t u = nw::graph::target(e);
          if (ds[u] != nw::null_vertex<> && ds[u] + 1 == ds[v]) sigma_s[v] += sigma_s[u];
        }
      }
      std::sort(order.begin(), order.end(),
                [&](vertex_id_t a, vertex_id_t b) { return dt[a] < dt[b]; });
      sigma_t[t] = 1;
      for (auto v : order) {
        if (dt[v] == nw::null_vertex<> || v == t) continue;
        for (auto&& e : g[v]) {
          vertex_id_t u = nw::graph::target(e);
          if (dt[u] != nw::null_vertex<> && dt[u] + 1 == dt[v]) sigma_t[v] += sigma_t[u];
        }
      }
      double total = sigma_s[t];
      for (vertex_id_t v = 0; v < n; ++v) {
        if (v == s || v == t) continue;
        if (ds[v] != nw::null_vertex<> && dt[v] != nw::null_vertex<> &&
            ds[v] + dt[v] == ds[t]) {
          bc[v] += sigma_s[v] * sigma_t[v] / total;
        }
      }
    }
  }
  return bc;
}

}  // namespace

class BrandesExhaustive : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BrandesExhaustive, MatchesBruteForceOnSmallGraphs) {
  auto                   el = nwtest::random_graph(14, 30, GetParam());
  nw::graph::adjacency<> g(el);
  auto brandes = nw::graph::betweenness_centrality(g, /*normalized=*/false);
  auto brute   = brute_force_bc(g);
  ASSERT_EQ(brandes.size(), brute.size());
  for (std::size_t v = 0; v < brute.size(); ++v) {
    EXPECT_NEAR(brandes[v], brute[v], 1e-9) << "vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BrandesExhaustive,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// --- differential: planted defect counts (gen::adversarial_hypergraph) --------------
//
// The adversarial generator *plants* exact defect counts; the validator
// must report them number for number.  This is the contract that makes the
// validator differential-testable — a boolean "something is wrong" flag
// could pass these cases while miscounting wildly.

#include "nwhy/gen/generators.hpp"
#include "prop_harness.hpp"

TEST(Validate, AdversarialPlantedDefectCountsReportedExactly) {
  for (auto seed : nwtest::differential_seeds(0x0BAD'0000)) {
    NWHY_SEED_TRACE(seed);
    auto a = gen::adversarial_hypergraph(seed);
    auto r = validate(a.el);
    EXPECT_EQ(r.out_of_bounds, a.out_of_bounds);
    EXPECT_EQ(r.duplicates, a.duplicates);
    EXPECT_EQ(r.empty_hyperedges, a.empty_hyperedges);
    EXPECT_EQ(r.isolated_nodes, a.isolated_nodes);
    EXPECT_EQ(r.ids_in_bounds, a.out_of_bounds == 0);
    EXPECT_FALSE(r.no_duplicates);  // the generator always plants >= 1
    EXPECT_FALSE(r.canonical());
    // The report string carries the counts for human triage.
    auto s = r.to_string();
    EXPECT_NE(s.find("DUPLICATE"), std::string::npos);
    if (a.out_of_bounds > 0) {
      EXPECT_NE(s.find("OUT OF BOUNDS"), std::string::npos);
    }
  }
}

TEST(Validate, AdversarialShapesCanonicalizeCleanWithoutPlantedOob) {
  // Without planted out-of-bounds ids the adversarial list is legal input:
  // sort_and_unique must absorb every planted duplicate, and the empty /
  // isolated counts survive canonicalization untouched (they are declared
  // cardinalities, not incidences).
  for (auto seed : nwtest::differential_seeds(0x0BAD'8000)) {
    NWHY_SEED_TRACE(seed);
    auto a  = gen::adversarial_hypergraph(seed, /*plant_out_of_bounds=*/false);
    auto el = a.el;
    el.sort_and_unique();
    auto r = validate(el);
    EXPECT_TRUE(r.canonical()) << r.to_string();
    EXPECT_EQ(r.duplicates, 0u);
    EXPECT_EQ(r.out_of_bounds, 0u);
    EXPECT_EQ(r.empty_hyperedges, a.empty_hyperedges);
    EXPECT_EQ(r.isolated_nodes, a.isolated_nodes);
  }
}
