// tests/test_io.cpp — MatrixMarket (bipartite + adjoin readers), KONECT
// bipartite TSV, and the binary snapshot format.
#include <gtest/gtest.h>

#include <sstream>

#include "nwhy/gen/generators.hpp"
#include "nwhy/io/binary.hpp"
#include "nwhy/io/konect.hpp"
#include "nwhy/io/matrix_market.hpp"
#include "test_util.hpp"

using namespace nw::hypergraph;
using nw::vertex_id_t;

namespace {

std::string figure1_mm() {
  std::ostringstream out;
  auto               el = nwtest::figure1_hypergraph();
  el.sort_and_unique();
  write_matrix_market(out, el);
  return out.str();
}

}  // namespace

TEST(MatrixMarket, RoundTripPreservesEverything) {
  auto el = nwtest::figure1_hypergraph();
  el.sort_and_unique();
  std::ostringstream out;
  write_matrix_market(out, el);
  std::istringstream in(out.str());
  auto               back = graph_reader(in);
  back.sort_and_unique();
  ASSERT_EQ(back.size(), el.size());
  EXPECT_EQ(back.num_vertices(0), el.num_vertices(0));
  EXPECT_EQ(back.num_vertices(1), el.num_vertices(1));
  for (std::size_t i = 0; i < el.size(); ++i) {
    EXPECT_EQ(back[i], el[i]);
  }
}

TEST(MatrixMarket, HeaderIsWellFormed) {
  auto text = figure1_mm();
  EXPECT_EQ(text.rfind("%%MatrixMarket matrix coordinate pattern general", 0), 0u);
  // Size line: 4 hyperedges x 9 hypernodes, 13 entries.
  EXPECT_NE(text.find("4 9 13"), std::string::npos);
}

TEST(MatrixMarket, ReaderSkipsComments) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "% a comment\n"
      "% another\n"
      "2 3 2\n"
      "1 1\n"
      "2 3\n");
  auto el = graph_reader(in);
  EXPECT_EQ(el.size(), 2u);
  EXPECT_EQ(el.num_vertices(0), 2u);
  EXPECT_EQ(el.num_vertices(1), 3u);
  auto [e, v] = el[1];
  EXPECT_EQ(e, 1u);
  EXPECT_EQ(v, 2u);
}

TEST(MatrixMarket, RealValuedEntriesAccepted) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 2\n"
      "1 1 0.5\n"
      "2 2 1.5\n");
  auto el = graph_reader(in);
  EXPECT_EQ(el.size(), 2u);
}

TEST(MatrixMarket, RejectsGarbage) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  std::istringstream in("this is not a matrix\n1 2 3\n");
  EXPECT_DEATH(graph_reader(in), "banner");
}

TEST(MatrixMarket, RejectsOutOfBoundsEntry) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 1\n"
      "3 1\n");
  EXPECT_DEATH(graph_reader(in), "bounds");
}

TEST(MatrixMarket, AdjoinReaderShiftsNodeIds) {
  std::istringstream in(figure1_mm());
  std::size_t        ne = 0, nv = 0;
  auto               flat = graph_reader_adjoin(in, ne, nv);
  EXPECT_EQ(ne, 4u);
  EXPECT_EQ(nv, 9u);
  EXPECT_EQ(flat.size(), 26u);  // 13 incidences, both directions
  EXPECT_EQ(flat.num_vertices(), 13u);
  // Every edge must connect the two ranges.
  for (std::size_t i = 0; i < flat.size(); ++i) {
    bool src_is_edge = flat.source(i) < ne;
    bool dst_is_edge = flat.destination(i) < ne;
    EXPECT_NE(src_is_edge, dst_is_edge);
  }
}

TEST(MatrixMarket, AdjoinAndBipartiteReadersAgree) {
  std::istringstream in1(figure1_mm()), in2(figure1_mm());
  auto               el = graph_reader(in1);
  std::size_t        ne = 0, nv = 0;
  auto               flat = graph_reader_adjoin(in2, ne, nv);
  EXPECT_EQ(el.num_vertices(0), ne);
  EXPECT_EQ(el.num_vertices(1), nv);
  EXPECT_EQ(2 * el.size(), flat.size());
}

// --- KONECT ------------------------------------------------------------------

TEST(Konect, ParsesCommentsAndWeights) {
  std::istringstream in(
      "% bip unweighted\n"
      "% 4 2 3\n"
      "1 1\n"
      "1 2 5 1234567\n"
      "2 3\n"
      "\n");
  auto el = read_konect_bipartite(in);
  EXPECT_EQ(el.size(), 3u);
  EXPECT_EQ(el.num_vertices(0), 2u);
  EXPECT_EQ(el.num_vertices(1), 3u);
  auto [e, v] = el[0];
  EXPECT_EQ(e, 0u);  // 1-based -> 0-based
  EXPECT_EQ(v, 0u);
}

TEST(Konect, HashCommentsAlsoSkipped) {
  std::istringstream in("# header\n2 2\n");
  auto               el = read_konect_bipartite(in);
  EXPECT_EQ(el.size(), 1u);
}

// --- binary snapshots -----------------------------------------------------------

TEST(Binary, RoundTrip) {
  auto el = nwtest::figure1_hypergraph();
  el.sort_and_unique();
  std::ostringstream out(std::ios::binary);
  write_binary(out, el);
  std::istringstream in(out.str(), std::ios::binary);
  auto               back = read_binary(in);
  ASSERT_EQ(back.size(), el.size());
  EXPECT_EQ(back.num_vertices(0), el.num_vertices(0));
  EXPECT_EQ(back.num_vertices(1), el.num_vertices(1));
  for (std::size_t i = 0; i < el.size(); ++i) EXPECT_EQ(back[i], el[i]);
}

TEST(Binary, RejectsWrongMagic) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  std::istringstream in("NOTMAGIC followed by junk", std::ios::binary);
  EXPECT_DEATH(read_binary(in), "snapshot");
}

TEST(Binary, EmptyHypergraphRoundTrips) {
  biedgelist<>       el(7, 9);
  std::ostringstream out(std::ios::binary);
  write_binary(out, el);
  std::istringstream in(out.str(), std::ios::binary);
  auto               back = read_binary(in);
  EXPECT_EQ(back.size(), 0u);
  EXPECT_EQ(back.num_vertices(0), 7u);
  EXPECT_EQ(back.num_vertices(1), 9u);
}

TEST(Binary, RoundTripLargeRandom) {
  auto el = gen::uniform_random_hypergraph(500, 300, 8, 0xF00D);
  std::ostringstream out(std::ios::binary);
  write_binary(out, el);
  std::istringstream in(out.str(), std::ios::binary);
  auto               back = read_binary(in);
  ASSERT_EQ(back.size(), el.size());
  for (std::size_t i = 0; i < el.size(); i += 97) EXPECT_EQ(back[i], el[i]);
}
