// tests/test_io.cpp — MatrixMarket (bipartite + adjoin readers), KONECT
// bipartite TSV, and the binary snapshot format.  Covers both parse
// engines: the streaming serial readers and the parallel byte-range
// engines behind the path-based entry points, which must agree
// bit-for-bit at every thread count (including on CRLF, comment-heavy and
// blank-line corpora).  All defects surface as nw::hypergraph::io_error
// with context — never a process abort.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "nwhy/gen/generators.hpp"
#include "nwhy/io/binary.hpp"
#include "nwhy/io/io_error.hpp"
#include "nwhy/io/konect.hpp"
#include "nwhy/io/matrix_market.hpp"
#include "nwpar/line_split.hpp"
#include "prop_harness.hpp"
#include "test_util.hpp"

using namespace nw::hypergraph;
using nw::vertex_id_t;

namespace {

std::string figure1_mm() {
  std::ostringstream out;
  auto               el = nwtest::figure1_hypergraph();
  el.sort_and_unique();
  write_matrix_market(out, el);
  return out.str();
}

}  // namespace

TEST(MatrixMarket, RoundTripPreservesEverything) {
  auto el = nwtest::figure1_hypergraph();
  el.sort_and_unique();
  std::ostringstream out;
  write_matrix_market(out, el);
  std::istringstream in(out.str());
  auto               back = graph_reader(in);
  back.sort_and_unique();
  ASSERT_EQ(back.size(), el.size());
  EXPECT_EQ(back.num_vertices(0), el.num_vertices(0));
  EXPECT_EQ(back.num_vertices(1), el.num_vertices(1));
  for (std::size_t i = 0; i < el.size(); ++i) {
    EXPECT_EQ(back[i], el[i]);
  }
}

TEST(MatrixMarket, HeaderIsWellFormed) {
  auto text = figure1_mm();
  EXPECT_EQ(text.rfind("%%MatrixMarket matrix coordinate pattern general", 0), 0u);
  // Size line: 4 hyperedges x 9 hypernodes, 13 entries.
  EXPECT_NE(text.find("4 9 13"), std::string::npos);
}

TEST(MatrixMarket, ReaderSkipsComments) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "% a comment\n"
      "% another\n"
      "2 3 2\n"
      "1 1\n"
      "2 3\n");
  auto el = graph_reader(in);
  EXPECT_EQ(el.size(), 2u);
  EXPECT_EQ(el.num_vertices(0), 2u);
  EXPECT_EQ(el.num_vertices(1), 3u);
  auto [e, v] = el[1];
  EXPECT_EQ(e, 1u);
  EXPECT_EQ(v, 2u);
}

TEST(MatrixMarket, RealValuedEntriesAccepted) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 2\n"
      "1 1 0.5\n"
      "2 2 1.5\n");
  auto el = graph_reader(in);
  EXPECT_EQ(el.size(), 2u);
}

TEST(MatrixMarket, RejectsGarbage) {
  std::istringstream in("this is not a matrix\n1 2 3\n");
  EXPECT_THROW(
      {
        try {
          graph_reader(in);
        } catch (const io_error& e) {
          EXPECT_NE(std::string(e.what()).find("banner"), std::string::npos);
          EXPECT_EQ(e.line(), 1u);
          throw;
        }
      },
      io_error);
}

TEST(MatrixMarket, RejectsOutOfBoundsEntry) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 1\n"
      "3 1\n");
  EXPECT_THROW(
      {
        try {
          graph_reader(in);
        } catch (const io_error& e) {
          EXPECT_NE(std::string(e.what()).find("bounds"), std::string::npos);
          throw;
        }
      },
      io_error);
}

TEST(MatrixMarket, ParallelRejectsOutOfBoundsWithLineContext) {
  // Same defect through the parallel engine: deterministic (first defect in
  // file order) and carrying exact line/byte context.
  std::string text =
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 1\n"
      "3 1\n";
  EXPECT_THROW(
      {
        try {
          parse_matrix_market(text);
        } catch (const io_error& e) {
          EXPECT_NE(std::string(e.what()).find("bounds"), std::string::npos);
          EXPECT_EQ(e.line(), 4u);
          EXPECT_NE(e.byte_offset(), io_error::npos);
          throw;
        }
      },
      io_error);
}

TEST(MatrixMarket, RejectsEntryCountMismatch) {
  std::string text =
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 5\n"
      "1 1\n"
      "2 2\n";
  EXPECT_THROW(parse_matrix_market(text), io_error);
  std::istringstream in(text);
  EXPECT_THROW(graph_reader(in), io_error);
}

TEST(MatrixMarket, AdjoinReaderShiftsNodeIds) {
  std::istringstream in(figure1_mm());
  std::size_t        ne = 0, nv = 0;
  auto               flat = graph_reader_adjoin(in, ne, nv);
  EXPECT_EQ(ne, 4u);
  EXPECT_EQ(nv, 9u);
  EXPECT_EQ(flat.size(), 26u);  // 13 incidences, both directions
  EXPECT_EQ(flat.num_vertices(), 13u);
  // Every edge must connect the two ranges.
  for (std::size_t i = 0; i < flat.size(); ++i) {
    bool src_is_edge = flat.source(i) < ne;
    bool dst_is_edge = flat.destination(i) < ne;
    EXPECT_NE(src_is_edge, dst_is_edge);
  }
}

TEST(MatrixMarket, AdjoinAndBipartiteReadersAgree) {
  std::istringstream in1(figure1_mm()), in2(figure1_mm());
  auto               el = graph_reader(in1);
  std::size_t        ne = 0, nv = 0;
  auto               flat = graph_reader_adjoin(in2, ne, nv);
  EXPECT_EQ(el.num_vertices(0), ne);
  EXPECT_EQ(el.num_vertices(1), nv);
  EXPECT_EQ(2 * el.size(), flat.size());
}

// --- KONECT ------------------------------------------------------------------

TEST(Konect, ParsesCommentsAndWeights) {
  std::istringstream in(
      "% bip unweighted\n"
      "% 4 2 3\n"
      "1 1\n"
      "1 2 5 1234567\n"
      "2 3\n"
      "\n");
  auto el = read_konect_bipartite(in);
  EXPECT_EQ(el.size(), 3u);
  EXPECT_EQ(el.num_vertices(0), 2u);
  EXPECT_EQ(el.num_vertices(1), 3u);
  auto [e, v] = el[0];
  EXPECT_EQ(e, 0u);  // 1-based -> 0-based
  EXPECT_EQ(v, 0u);
}

TEST(Konect, HashCommentsAlsoSkipped) {
  std::istringstream in("# header\n2 2\n");
  auto               el = read_konect_bipartite(in);
  EXPECT_EQ(el.size(), 1u);
}

// --- binary snapshots -----------------------------------------------------------

TEST(Binary, RoundTrip) {
  auto el = nwtest::figure1_hypergraph();
  el.sort_and_unique();
  std::ostringstream out(std::ios::binary);
  write_binary(out, el);
  std::istringstream in(out.str(), std::ios::binary);
  auto               back = read_binary(in);
  ASSERT_EQ(back.size(), el.size());
  EXPECT_EQ(back.num_vertices(0), el.num_vertices(0));
  EXPECT_EQ(back.num_vertices(1), el.num_vertices(1));
  for (std::size_t i = 0; i < el.size(); ++i) EXPECT_EQ(back[i], el[i]);
}

TEST(Binary, RejectsWrongMagic) {
  std::istringstream in("NOTMAGIC followed by junk", std::ios::binary);
  EXPECT_THROW(
      {
        try {
          read_binary(in);
        } catch (const io_error& e) {
          EXPECT_NE(std::string(e.what()).find("snapshot"), std::string::npos);
          throw;
        }
      },
      io_error);
}

TEST(Binary, RejectsTruncatedBody) {
  auto el = nwtest::figure1_hypergraph();
  el.sort_and_unique();
  std::ostringstream out(std::ios::binary);
  write_binary(out, el);
  std::string bytes = out.str();
  bytes.resize(bytes.size() - 5);  // chop the tail of the node-id column
  std::istringstream in(bytes, std::ios::binary);
  EXPECT_THROW(read_binary(in), io_error);
}

TEST(Binary, EmptyHypergraphRoundTrips) {
  biedgelist<>       el(7, 9);
  std::ostringstream out(std::ios::binary);
  write_binary(out, el);
  std::istringstream in(out.str(), std::ios::binary);
  auto               back = read_binary(in);
  EXPECT_EQ(back.size(), 0u);
  EXPECT_EQ(back.num_vertices(0), 7u);
  EXPECT_EQ(back.num_vertices(1), 9u);
}

TEST(Binary, RoundTripLargeRandom) {
  auto el = gen::uniform_random_hypergraph(500, 300, 8, 0xF00D);
  std::ostringstream out(std::ios::binary);
  write_binary(out, el);
  std::istringstream in(out.str(), std::ios::binary);
  auto               back = read_binary(in);
  ASSERT_EQ(back.size(), el.size());
  for (std::size_t i = 0; i < el.size(); i += 97) EXPECT_EQ(back[i], el[i]);
}

// --- parallel vs. serial parse agreement ------------------------------------

namespace {

void expect_same_list(const biedgelist<>& a, const biedgelist<>& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.num_vertices(0), b.num_vertices(0));
  EXPECT_EQ(a.num_vertices(1), b.num_vertices(1));
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "incidence " << i << " differs";
  }
}

/// A deliberately awkward MatrixMarket corpus: CRLF line endings, comment
/// and blank lines scattered through the body, trailing value fields, no
/// final newline.
std::string awkward_mm_corpus() {
  auto        el = gen::uniform_random_hypergraph(60, 40, 5, 0xA11CE);
  std::string text =
      "%%MatrixMarket matrix coordinate real general\r\n"
      "% comment before the size line\r\n"
      "\r\n";
  text += std::to_string(el.num_vertices(0)) + " " + std::to_string(el.num_vertices(1)) + " " +
          std::to_string(el.size()) + "\r\n";
  for (std::size_t i = 0; i < el.size(); ++i) {
    auto [e, v] = el[i];
    if (i % 7 == 0) text += "% body comment\r\n";
    if (i % 11 == 0) text += "\r\n";
    text += std::to_string(e + 1) + " " + std::to_string(v + 1) + " 1.0";
    if (i + 1 != el.size()) text += "\r\n";
  }
  return text;
}

std::string awkward_konect_corpus() {
  auto        el = gen::uniform_random_hypergraph(50, 70, 4, 0xBEEF1);
  std::string text = "% bip metadata header\n# hash comment\n";
  for (std::size_t i = 0; i < el.size(); ++i) {
    auto [e, v] = el[i];
    if (i % 9 == 0) text += "\n";
    if (i % 13 == 0) text += "stray metadata row\n";
    text += std::to_string(e + 1) + "\t" + std::to_string(v + 1);
    if (i % 5 == 0) text += " 3 1700000000";  // weight + timestamp columns
    text += "\n";
  }
  return text;
}

}  // namespace

TEST(ParallelParse, MatrixMarketMatchesSerialAtAllThreadCounts) {
  nwtest::concurrency_guard guard;
  auto               text = awkward_mm_corpus();
  std::istringstream in(text);
  auto               serial = graph_reader(in);
  for (unsigned threads : nwtest::differential_thread_counts()) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    nw::par::thread_pool::set_default_concurrency(threads);
    auto parallel = parse_matrix_market(text);
    expect_same_list(serial, parallel);
  }
}

TEST(ParallelParse, KonectMatchesSerialAtAllThreadCounts) {
  nwtest::concurrency_guard guard;
  auto               text = awkward_konect_corpus();
  std::istringstream in(text);
  auto               serial = read_konect_bipartite(in);
  for (unsigned threads : nwtest::differential_thread_counts()) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    nw::par::thread_pool::set_default_concurrency(threads);
    auto parallel = parse_konect_bipartite(text);
    expect_same_list(serial, parallel);
  }
}

TEST(ParallelParse, EmptyBodyAndCommentOnlyCorpora) {
  nwtest::concurrency_guard guard;
  std::string mm =
      "%%MatrixMarket matrix coordinate pattern general\n"
      "3 4 0\n"
      "% nothing else\n"
      "\n";
  std::string konect = "% only comments\n# and hashes\n\n";
  for (unsigned threads : nwtest::differential_thread_counts()) {
    nw::par::thread_pool::set_default_concurrency(threads);
    auto el = parse_matrix_market(mm);
    EXPECT_EQ(el.size(), 0u);
    EXPECT_EQ(el.num_vertices(0), 3u);
    EXPECT_EQ(el.num_vertices(1), 4u);
    auto kel = parse_konect_bipartite(konect);
    EXPECT_EQ(kel.size(), 0u);
  }
}

TEST(ParallelParse, KonectRejectsZeroBasedIdsDeterministically) {
  nwtest::concurrency_guard guard;
  std::string text = "1 1\n2 2\n0 3\n4 4\n0 5\n";  // two defects; first wins
  for (unsigned threads : nwtest::differential_thread_counts()) {
    nw::par::thread_pool::set_default_concurrency(threads);
    EXPECT_THROW(
        {
          try {
            parse_konect_bipartite(text);
          } catch (const io_error& e) {
            EXPECT_EQ(e.line(), 3u) << "first defect in file order must win";
            throw;
          }
        },
        io_error);
  }
}

TEST(ParallelParse, SplitLineRangesCoverAndAlign) {
  std::string text = "aa\nbbbb\nc\n\ndddddd\nee";
  for (std::size_t parts : {1u, 2u, 3u, 8u}) {
    auto ranges = nw::par::split_line_ranges(text, 0, text.size(), parts);
    ASSERT_FALSE(ranges.empty());
    EXPECT_EQ(ranges.front().begin, 0u);
    EXPECT_EQ(ranges.back().end, text.size());
    for (std::size_t i = 1; i < ranges.size(); ++i) {
      EXPECT_EQ(ranges[i].begin, ranges[i - 1].end);  // contiguous
      // Every interior boundary sits just past a newline.
      EXPECT_EQ(text[ranges[i].begin - 1], '\n');
    }
  }
}

// --- 32-bit id space enforcement --------------------------------------------
//
// vertex_id_t is u32.  Text ids (KONECT) and declared dimensions
// (MatrixMarket) arrive as 64-bit integers; anything past the u32 id space
// must be a hard io_error, never a silent truncation into a wrong-but-
// plausible hypergraph.

TEST(Konect, RejectsIdPastU32Space) {
  // 4294967295 (= 0xFFFFFFFF) is the largest legal 1-based id; one past it
  // overflows.  Exercise both columns and both engines.
  const std::string ok       = "4294967295 1\n";
  const std::string bad_left = "4294967296 1\n";
  const std::string bad_right = "% c\n1 4294967296\n";
  {
    std::istringstream in(ok);
    EXPECT_EQ(read_konect_bipartite(in).size(), 1u);
  }
  for (const auto* text : {&bad_left, &bad_right}) {
    std::istringstream in(*text);
    EXPECT_THROW(
        {
          try {
            read_konect_bipartite(in);
          } catch (const io_error& e) {
            EXPECT_NE(std::string(e.what()).find("overflows"), std::string::npos);
            throw;
          }
        },
        io_error);
    EXPECT_THROW(parse_konect_bipartite(*text), io_error);
  }
}

TEST(MatrixMarket, RejectsDimensionsPastU32Space) {
  const std::string banner  = "%%MatrixMarket matrix coordinate pattern general\n";
  const std::string bad_rows = banner + "4294967296 3 1\n1 1\n";
  const std::string bad_cols = banner + "3 4294967296 1\n1 1\n";
  for (const auto* text : {&bad_rows, &bad_cols}) {
    std::istringstream in(*text);
    EXPECT_THROW(
        {
          try {
            graph_reader(in, "<mem>");
          } catch (const io_error& e) {
            EXPECT_NE(std::string(e.what()).find("overflow"), std::string::npos);
            throw;
          }
        },
        io_error);
    EXPECT_THROW(parse_matrix_market(*text), io_error);
  }
}
