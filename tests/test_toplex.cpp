// tests/test_toplex.cpp — Algorithm 3 (toplex computation): parallel
// implementation against the serial candidate-set reference and against
// hand-computed cases.
#include <gtest/gtest.h>

#include "nwhy/algorithms/toplex.hpp"
#include "nwhy/gen/generators.hpp"
#include "test_util.hpp"

using namespace nw::hypergraph;
using nw::vertex_id_t;

namespace {

std::pair<biadjacency<0>, biadjacency<1>> build(biedgelist<> el) {
  el.sort_and_unique();
  return {biadjacency<0>(el), biadjacency<1>(el)};
}

}  // namespace

TEST(Toplex, Figure1AllEdgesAreMaximal) {
  auto [he, hn] = build(nwtest::figure1_hypergraph());
  EXPECT_EQ(toplexes(he, hn), (std::vector<vertex_id_t>{0, 1, 2, 3}));
}

TEST(Toplex, StrictNesting) {
  biedgelist<> el;
  // e0 = {0}, e1 = {0,1}, e2 = {0,1,2}: only e2 is a toplex.
  el.push_back(0, 0);
  el.push_back(1, 0);
  el.push_back(1, 1);
  el.push_back(2, 0);
  el.push_back(2, 1);
  el.push_back(2, 2);
  auto [he, hn] = build(std::move(el));
  EXPECT_EQ(toplexes(he, hn), (std::vector<vertex_id_t>{2}));
}

TEST(Toplex, DuplicateEdgesKeepOneRepresentative) {
  biedgelist<> el;
  for (vertex_id_t v : {0, 1, 2}) {
    el.push_back(0, v);
    el.push_back(1, v);
  }
  el.push_back(2, 5);  // unrelated edge
  auto [he, hn] = build(std::move(el));
  EXPECT_EQ(toplexes(he, hn), (std::vector<vertex_id_t>{0, 2}));
}

TEST(Toplex, PartialOverlapIsNotContainment) {
  biedgelist<> el;
  // e0 = {0,1}, e1 = {1,2}: overlapping but neither contains the other.
  el.push_back(0, 0);
  el.push_back(0, 1);
  el.push_back(1, 1);
  el.push_back(1, 2);
  auto [he, hn] = build(std::move(el));
  EXPECT_EQ(toplexes(he, hn), (std::vector<vertex_id_t>{0, 1}));
}

TEST(Toplex, NestedChainsYieldOneToplexEach) {
  for (std::size_t chains : {1u, 3u, 8u}) {
    auto [he, hn] = build(gen::nested_hypergraph(chains, 5));
    auto t        = toplexes(he, hn);
    EXPECT_EQ(t.size(), chains);
    // The toplex of chain c is its last (largest) hyperedge.
    for (std::size_t c = 0; c < chains; ++c) {
      EXPECT_EQ(t[c], static_cast<vertex_id_t>(c * 5 + 4));
    }
  }
}

TEST(Toplex, SerialReferenceAgreesOnKnownCases) {
  auto [he1, hn1] = build(nwtest::figure1_hypergraph());
  EXPECT_EQ(toplexes_serial(he1), toplexes(he1, hn1));
  auto [he2, hn2] = build(gen::nested_hypergraph(4, 6));
  EXPECT_EQ(toplexes_serial(he2), toplexes(he2, hn2));
}

class ToplexProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ToplexProperty, ParallelMatchesSerialOnRandomInputs) {
  auto seed = GetParam();
  for (auto el : {gen::uniform_random_hypergraph(60, 30, 4, seed),
                  gen::powerlaw_hypergraph(50, 25, 12, 1.3, 1.0, seed),
                  gen::planted_community_hypergraph(40, 60, 15, 1.5, 0.5, seed)}) {
    auto [he, hn] = build(std::move(el));
    EXPECT_EQ(toplexes(he, hn), toplexes_serial(he));
  }
}

TEST_P(ToplexProperty, EveryNonToplexIsContainedInAToplex) {
  auto el       = gen::uniform_random_hypergraph(50, 20, 3, GetParam() + 1000);
  auto [he, hn] = build(std::move(el));
  auto t        = toplexes(he, hn);
  std::vector<char> is_toplex(he.size(), 0);
  for (auto e : t) is_toplex[e] = 1;

  auto contains = [&](vertex_id_t big, vertex_id_t small) {
    auto rb = he[big];
    auto rs = he[small];
    return std::includes(rb.begin(), rb.end(), rs.begin(), rs.end());
  };
  for (vertex_id_t e = 0; e < he.size(); ++e) {
    if (is_toplex[e]) continue;
    bool covered = false;
    for (auto f : t) {
      if (contains(f, e)) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << "non-toplex " << e << " not contained in any toplex";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ToplexProperty, ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(Toplex, EmptyHypergraph) {
  auto [he, hn] = build(biedgelist<>{});
  EXPECT_TRUE(toplexes(he, hn).empty());
}

TEST(Toplex, SingleEdge) {
  biedgelist<> el;
  el.push_back(0, 0);
  auto [he, hn] = build(std::move(el));
  EXPECT_EQ(toplexes(he, hn), (std::vector<vertex_id_t>{0}));
}
