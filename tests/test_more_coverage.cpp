// tests/test_more_coverage.cpp — additional edge cases: attributed
// bipartite containers, SSSP corner cases, end-to-end round-trip
// properties (generate -> serialize -> reload -> identical analytics), and
// C-API failure paths.
#include <gtest/gtest.h>

#include <sstream>

#include "capi/nwhy_capi.h"
#include "nwhy.hpp"
#include "test_util.hpp"

using namespace nw::hypergraph;
using nw::vertex_id_t;

// --- attributed bipartite containers ------------------------------------------

TEST(AttributedBiadjacency, WeightsTravelWithIncidences) {
  biedgelist<double> el;
  el.push_back(0, 1, 0.5);
  el.push_back(0, 2, 1.5);
  el.push_back(1, 2, 2.5);
  biadjacency<0, double> hyperedges(el);
  biadjacency<1, double> hypernodes(el);

  double sum = 0;
  for (auto&& [v, w] : hyperedges[0]) {
    if (v == 1) { EXPECT_DOUBLE_EQ(w, 0.5); }
    if (v == 2) { EXPECT_DOUBLE_EQ(w, 1.5); }
    sum += w;
  }
  EXPECT_DOUBLE_EQ(sum, 2.0);
  // Transposed side carries the same weights.
  for (auto&& [e, w] : hypernodes[2]) {
    if (e == 0) { EXPECT_DOUBLE_EQ(w, 1.5); }
    if (e == 1) { EXPECT_DOUBLE_EQ(w, 2.5); }
  }
}

TEST(AttributedBiadjacency, SortAndUniqueKeepsFirstWeight) {
  biedgelist<double> el;
  el.push_back(0, 1, 9.0);
  el.push_back(0, 1, 1.0);  // duplicate incidence, different weight
  el.sort_and_unique();
  ASSERT_EQ(el.size(), 1u);
  auto [e, v, w] = el[0];
  EXPECT_DOUBLE_EQ(w, 9.0);
}

TEST(AttributedEdgeList, RelabelPreservesWeights) {
  nw::graph::edge_list<float> el(4);
  el.push_back(0, 1, 1.5f);
  el.push_back(2, 3, 2.5f);
  std::vector<vertex_id_t> perm{3, 2, 1, 0};
  auto rel = nw::graph::relabel_edge_list(el, perm, perm);
  auto [u, v, w] = rel[0];
  EXPECT_EQ(u, 3u);
  EXPECT_EQ(v, 2u);
  EXPECT_FLOAT_EQ(w, 1.5f);
}

// --- SSSP corner cases ------------------------------------------------------------

TEST(SsspCorners, SingleVertex) {
  nw::graph::edge_list<float> el(1);
  nw::graph::adjacency<float> g(el, 1);
  auto                        d = nw::graph::sssp_dijkstra(g, 0);
  EXPECT_FLOAT_EQ(d[0], 0.0f);
  auto ds = nw::graph::sssp_delta_stepping(g, 0, 1.0f);
  EXPECT_FLOAT_EQ(ds[0], 0.0f);
}

TEST(SsspCorners, HugeDeltaDegeneratesToBellmanFordRounds) {
  nw::graph::edge_list<float> el(3);
  el.push_back(0, 1, 1.0f);
  el.push_back(1, 2, 1.0f);
  nw::graph::adjacency<float> g(el, 3);
  auto                        d = nw::graph::sssp_delta_stepping(g, 0, 1e9f);
  EXPECT_FLOAT_EQ(d[2], 2.0f);
}

TEST(SsspCorners, TinyDeltaManyBuckets) {
  nw::graph::edge_list<float> el(3);
  el.push_back(0, 1, 3.0f);
  el.push_back(1, 2, 4.0f);
  nw::graph::adjacency<float> g(el, 3);
  auto                        d = nw::graph::sssp_delta_stepping(g, 0, 0.01f);
  EXPECT_FLOAT_EQ(d[2], 7.0f);
}

TEST(SsspCorners, DeltaMustBePositive) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  nw::graph::edge_list<float> el(2);
  el.push_back(0, 1, 1.0f);
  nw::graph::adjacency<float> g(el, 2);
  EXPECT_DEATH(nw::graph::sssp_delta_stepping(g, 0, 0.0f), "positive");
}

// --- end-to-end round trips ---------------------------------------------------------

class RoundTripParam : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoundTripParam, MatrixMarketPreservesAnalytics) {
  auto el = gen::powerlaw_hypergraph(50, 40, 10, 1.5, 1.0, GetParam());
  el.sort_and_unique();
  NWHypergraph before(el);

  std::ostringstream out;
  write_matrix_market(out, before.edge_list());
  std::istringstream in(out.str());
  NWHypergraph       after(graph_reader(in));

  EXPECT_EQ(before.num_hyperedges(), after.num_hyperedges());
  EXPECT_EQ(before.num_hypernodes(), after.num_hypernodes());
  EXPECT_EQ(before.toplexes(), after.toplexes());
  for (std::size_t s : {1, 2}) {
    EXPECT_EQ(before.make_s_linegraph(s).num_edges(), after.make_s_linegraph(s).num_edges());
  }
}

TEST_P(RoundTripParam, BinaryPreservesAnalytics) {
  auto el = gen::planted_community_hypergraph(40, 100, 15, 1.4, 0.3, GetParam());
  el.sort_and_unique();
  NWHypergraph before(el);

  std::ostringstream out(std::ios::binary);
  write_binary(out, before.edge_list());
  std::istringstream in(out.str(), std::ios::binary);
  NWHypergraph       after(read_binary(in));

  auto cc_before = before.connected_components_adjoin();
  auto cc_after  = after.connected_components_adjoin();
  EXPECT_EQ(cc_before.labels_edge, cc_after.labels_edge);
  EXPECT_EQ(cc_before.labels_node, cc_after.labels_node);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripParam, ::testing::Values(21, 22, 23));

// --- C API failure paths ---------------------------------------------------------------

TEST(CApiCorners, UnreachablePathAndDistance) {
  // Two disjoint hyperedges.
  std::vector<uint32_t> edges{0, 1};
  std::vector<uint32_t> nodes{0, 1};
  nwhy_hypergraph* hg = nwhy_hypergraph_create(edges.data(), nodes.data(), nullptr, 2);
  nwhy_slinegraph* lg = nwhy_s_linegraph(hg, 1, 1);
  EXPECT_EQ(nwhy_slg_s_distance(lg, 0, 1), NWHY_NULL_ID);
  EXPECT_EQ(nwhy_slg_s_path(lg, 0, 1, nullptr), 0u);
  EXPECT_EQ(nwhy_slg_s_degree(lg, 0), 0u);
  EXPECT_EQ(nwhy_slg_is_s_connected(lg), 0);
  nwhy_slinegraph_destroy(lg);
  nwhy_hypergraph_destroy(hg);
}

TEST(CApiCorners, ComponentsMarkInactiveNull) {
  // One big hyperedge, one tiny one; s = 2 deactivates the tiny one.
  std::vector<uint32_t> edges{0, 0, 0, 1};
  std::vector<uint32_t> nodes{0, 1, 2, 0};
  nwhy_hypergraph* hg = nwhy_hypergraph_create(edges.data(), nodes.data(), nullptr, 4);
  nwhy_slinegraph* lg = nwhy_s_linegraph(hg, 2, 1);
  std::vector<uint32_t> labels(nwhy_slg_num_vertices(lg));
  nwhy_slg_s_connected_components(lg, labels.data());
  EXPECT_NE(labels[0], NWHY_NULL_ID);
  EXPECT_EQ(labels[1], NWHY_NULL_ID);
  nwhy_slinegraph_destroy(lg);
  nwhy_hypergraph_destroy(hg);
}

// --- range adaptor <-> paper Listing 4 integration --------------------------------------

TEST(Listing4, AllThreeIterationStylesAgree) {
  auto el = nwtest::figure1_hypergraph();
  el.sort_and_unique();
  biadjacency<0> hyperedges(el);

  // Style 1: serial range-of-ranges (std::for_each in the paper).
  std::size_t count1 = 0;
  std::for_each(hyperedges.begin(), hyperedges.end(), [&](auto&& nbrs) {
    std::for_each(nbrs.begin(), nbrs.end(), [&](auto&& e) {
      (void)target(e);
      ++count1;
    });
  });

  // Style 2: parallel_for over the id space (tbb::blocked_range analog).
  std::atomic<std::size_t> count2{0};
  nw::par::parallel_for(0, num_vertices(hyperedges, 0), [&](std::size_t e) {
    for (auto&& v : hyperedges[e]) {
      (void)target(v);
      count2.fetch_add(1);
    }
  });

  // Style 3: cyclic neighbor range adaptor (the paper's custom adaptor).
  std::atomic<std::size_t> count3{0};
  nw::par::for_each_cyclic_neighborhood(hyperedges, 4,
                                        [&](unsigned, std::size_t, auto&& nbrs) {
                                          for (auto&& v : nbrs) {
                                            (void)target(v);
                                            count3.fetch_add(1);
                                          }
                                        });

  EXPECT_EQ(count1, el.size());
  EXPECT_EQ(count2.load(), el.size());
  EXPECT_EQ(count3.load(), el.size());
}
