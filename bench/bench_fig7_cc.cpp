// bench/bench_fig7_cc.cpp — reproduces Figure 7: strong scaling of
// hypergraph connected-component decomposition.  Series per dataset:
// HyperCC (bipartite label propagation), AdjoinCC-Afforest, AdjoinCC-LP,
// and the HygraCC comparator, across doubling thread counts.
//
//   NWHY_BENCH_JSON     path; when set the harness skips the Figure-7 table
//                       and writes a machine-readable sweep (dataset x
//                       algorithm x threads, median ms and component count)
//                       for scripts/bench_snapshot.sh
//   NWHY_BENCH_DATASETS comma list of dataset names for the JSON sweep
#include <cstdio>

#include "bench_common.hpp"
#include "hygra/algorithms.hpp"

using namespace bench;

namespace {

std::size_t components_of(const std::vector<nw::vertex_id_t>& labels_edge,
                          const std::vector<nw::vertex_id_t>& labels_node) {
  std::vector<nw::vertex_id_t> all(labels_edge);
  all.insert(all.end(), labels_node.begin(), labels_node.end());
  return nw::graph::count_components(all);
}

/// NWHY_BENCH_JSON mode: one record per dataset x algorithm x thread-count:
/// {"dataset", "algorithm", "threads", "median_ms", "components"}.  The
/// component count doubles as a cross-engine sanity invariant.
int run_json_mode(const char* path) {
  FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "[bench] cannot open %s for writing\n", path);
    return 1;
  }
  const unsigned restore = nw::par::num_threads();
  std::fprintf(out, "[");
  bool first = true;
  for (const auto& d : suite()) {
    if (!dataset_selected(d->name)) continue;
    for (unsigned threads : env_threads()) {
      nw::par::thread_pool::set_default_concurrency(threads);
      auto emit = [&](const char* name, double ms, std::size_t components) {
        std::fprintf(out,
                     "%s\n  {\"dataset\": \"%s\", \"algorithm\": \"%s\", \"threads\": %u, "
                     "\"median_ms\": %.4f, \"components\": %zu, \"peak_rss_kb\": %ld}",
                     first ? "" : ",", d->name.c_str(), name, threads, ms, components,
                     peak_rss_kb());
        first = false;
      };
      std::size_t comps = 0;
      double      ms    = time_median_ms([&] {
        auto r = hyper_cc(d->hyperedges, d->hypernodes);
        comps  = components_of(r.labels_edge, r.labels_node);
      });
      emit("HyperCC", ms, comps);
      ms = time_median_ms([&] {
        auto r = adjoin_cc(d->adjoin, adjoin_cc_engine::afforest);
        comps  = components_of(r.labels_edge, r.labels_node);
      });
      emit("AdjoinCC-Aff", ms, comps);
      ms = time_median_ms([&] {
        auto r = adjoin_cc(d->adjoin, adjoin_cc_engine::label_propagation);
        comps  = components_of(r.labels_edge, r.labels_node);
      });
      emit("AdjoinCC-LP", ms, comps);
      ms = time_median_ms([&] {
        auto r = nw::hygra::hygra_cc(d->hyperedges, d->hypernodes);
        comps  = components_of(r.labels_edge, r.labels_node);
      });
      emit("HygraCC", ms, comps);
    }
  }
  std::fprintf(out, "\n]\n");
  std::fclose(out);
  nw::par::thread_pool::set_default_concurrency(restore);
  std::fprintf(stderr, "[bench] wrote CC sweep to %s\n", path);
  return 0;
}

}  // namespace

int main() {
  if (const char* json = std::getenv("NWHY_BENCH_JSON"); json != nullptr && *json != '\0') {
    setenv("NWHY_BENCH_REPS", "3", /*overwrite=*/0);
    return run_json_mode(json);
  }
  std::printf("Figure 7 — strong scaling, connected components (time in ms, min of %zu reps)\n",
              env_size("NWHY_BENCH_REPS", 3));
  std::printf("%-18s %8s %12s %16s %12s %12s\n", "dataset", "threads", "HyperCC",
              "AdjoinCC-Aff", "AdjoinCC-LP", "HygraCC");
  for (const auto& d : suite()) {
    for (unsigned t : env_threads()) {
      nw::par::thread_pool::set_default_concurrency(t);
      double hyper = time_min_ms([&] {
        auto r = hyper_cc(d->hyperedges, d->hypernodes);
        (void)r;
      });
      double aff = time_min_ms([&] {
        auto r = adjoin_cc(d->adjoin, adjoin_cc_engine::afforest);
        (void)r;
      });
      double lp = time_min_ms([&] {
        auto r = adjoin_cc(d->adjoin, adjoin_cc_engine::label_propagation);
        (void)r;
      });
      double hygra = time_min_ms([&] {
        auto r = nw::hygra::hygra_cc(d->hyperedges, d->hypernodes);
        (void)r;
      });
      std::printf("%-18s %8u %12.2f %16.2f %12.2f %12.2f\n", d->name.c_str(), t, hyper, aff, lp,
                  hygra);
    }
    // Sanity footer: component count must agree across engines.
    auto a = adjoin_cc(d->adjoin, adjoin_cc_engine::afforest);
    std::printf("  -> %zu connected components\n", components_of(a.labels_edge, a.labels_node));
  }
  return 0;
}
