// bench/bench_fig7_cc.cpp — reproduces Figure 7: strong scaling of
// hypergraph connected-component decomposition.  Series per dataset:
// HyperCC (bipartite label propagation), AdjoinCC-Afforest, AdjoinCC-LP,
// and the HygraCC comparator, across doubling thread counts.
#include <cstdio>

#include "bench_common.hpp"
#include "hygra/algorithms.hpp"

using namespace bench;

int main() {
  std::printf("Figure 7 — strong scaling, connected components (time in ms, min of %zu reps)\n",
              env_size("NWHY_BENCH_REPS", 3));
  std::printf("%-18s %8s %12s %16s %12s %12s\n", "dataset", "threads", "HyperCC",
              "AdjoinCC-Aff", "AdjoinCC-LP", "HygraCC");
  for (const auto& d : suite()) {
    for (unsigned t : env_threads()) {
      nw::par::thread_pool::set_default_concurrency(t);
      double hyper = time_min_ms([&] {
        auto r = hyper_cc(d->hyperedges, d->hypernodes);
        (void)r;
      });
      double aff = time_min_ms([&] {
        auto r = adjoin_cc(d->adjoin, adjoin_cc_engine::afforest);
        (void)r;
      });
      double lp = time_min_ms([&] {
        auto r = adjoin_cc(d->adjoin, adjoin_cc_engine::label_propagation);
        (void)r;
      });
      double hygra = time_min_ms([&] {
        auto r = nw::hygra::hygra_cc(d->hyperedges, d->hypernodes);
        (void)r;
      });
      std::printf("%-18s %8u %12.2f %16.2f %12.2f %12.2f\n", d->name.c_str(), t, hyper, aff, lp,
                  hygra);
    }
    // Sanity footer: component count must agree across engines.
    auto a = adjoin_cc(d->adjoin, adjoin_cc_engine::afforest);
    std::vector<nw::vertex_id_t> all(a.labels_edge);
    all.insert(all.end(), a.labels_node.begin(), a.labels_node.end());
    std::printf("  -> %zu connected components\n", nw::graph::count_components(all));
  }
  return 0;
}
