// bench/bench_table1.cpp — reproduces Table I: input characteristics of the
// benchmark suite.  Columns match the paper: |V|, |E|, average degrees
// (d̄v = average hypernode degree, d̄e = average hyperedge size) and maximum
// degrees (Δv, Δe).
#include <cstdio>

#include "bench_common.hpp"

int main() {
  std::printf("Table I — input characteristics (synthetic analogs, scale=%zu)\n",
              bench::env_size("NWHY_BENCH_SCALE", 1));
  std::printf("%-18s %10s %10s %8s %8s %10s %10s\n", "hypergraph", "|V|", "|E|", "dv_avg",
              "de_avg", "dv_max", "de_max");
  for (const auto& d : bench::suite()) {
    auto node_stats =
        nw::compute_degree_stats(std::span<const std::size_t>(d->node_degrees));
    auto edge_stats =
        nw::compute_degree_stats(std::span<const std::size_t>(d->edge_degrees));
    std::printf("%-18s %10s %10s %8.1f %8.1f %10s %10s\n", d->name.c_str(),
                nw::format_compact(static_cast<double>(d->hypernodes.size())).c_str(),
                nw::format_compact(static_cast<double>(d->hyperedges.size())).c_str(),
                node_stats.mean, edge_stats.mean,
                nw::format_compact(static_cast<double>(node_stats.max)).c_str(),
                nw::format_compact(static_cast<double>(edge_stats.max)).c_str());
  }
  return 0;
}
