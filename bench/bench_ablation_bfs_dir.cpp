// bench/bench_ablation_bfs_dir.cpp — ablation C (Sec. III-C.1/2): top-down
// vs bottom-up vs direction-optimizing BFS, on both the bipartite and the
// adjoin representations.  Direction-optimization is what separates
// AdjoinBFS from the top-down HygraBFS comparator.
#include <benchmark/benchmark.h>

#include "nwhy.hpp"

namespace {

using namespace nw::hypergraph;

struct fixture {
  biadjacency<0> hyperedges;
  biadjacency<1> hypernodes;
  adjoin_graph   adjoin;
  nw::vertex_id_t source;
};

const fixture& data() {
  static fixture f = [] {
    auto el = gen::uniform_random_hypergraph(30000, 30000, 8, 0xAB1C);
    el.sort_and_unique();
    biadjacency<0> he(el);
    biadjacency<1> hn(el);
    auto           adjoin = make_adjoin_graph(el);
    nw::vertex_id_t src   = 0;
    return fixture{std::move(he), std::move(hn), std::move(adjoin), src};
  }();
  return f;
}

void BM_HyperBFS_TopDown(benchmark::State& state) {
  const auto& f = data();
  for (auto _ : state) {
    auto r = hyper_bfs_top_down(f.hyperedges, f.hypernodes, f.source);
    benchmark::DoNotOptimize(r.parents_edge.data());
  }
}

void BM_HyperBFS_BottomUp(benchmark::State& state) {
  const auto& f = data();
  for (auto _ : state) {
    auto r = hyper_bfs_bottom_up(f.hyperedges, f.hypernodes, f.source);
    benchmark::DoNotOptimize(r.parents_edge.data());
  }
}

void BM_HyperBFS_DirectionOptimizing(benchmark::State& state) {
  const auto& f = data();
  for (auto _ : state) {
    auto r = hyper_bfs(f.hyperedges, f.hypernodes, f.source);
    benchmark::DoNotOptimize(r.parents_edge.data());
  }
}

void BM_AdjoinBFS_TopDown(benchmark::State& state) {
  const auto& f = data();
  for (auto _ : state) {
    auto r = nw::graph::bfs_top_down(f.adjoin.graph, f.source);
    benchmark::DoNotOptimize(r.data());
  }
}

void BM_AdjoinBFS_DirectionOptimizing(benchmark::State& state) {
  const auto& f = data();
  for (auto _ : state) {
    auto r = nw::graph::bfs_direction_optimizing(f.adjoin.graph, f.source);
    benchmark::DoNotOptimize(r.data());
  }
}

}  // namespace

BENCHMARK(BM_HyperBFS_TopDown)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HyperBFS_BottomUp)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HyperBFS_DirectionOptimizing)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AdjoinBFS_TopDown)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AdjoinBFS_DirectionOptimizing)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
