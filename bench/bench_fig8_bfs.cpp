// bench/bench_fig8_bfs.cpp — reproduces Figure 8: strong scaling of
// hypergraph breadth-first search from the highest-degree hyperedge.
// Series: HyperBFS (direction-optimizing on the bipartite form), AdjoinBFS
// (direction-optimizing on the adjoin form), and the Hygra comparator
// (direction-optimizing edgeMap); the JSON sweep adds HyperBFS-relabel
// (same engine over a degree-relabeled twin, answers translated back).
//
//   NWHY_BENCH_JSON     path; when set the harness skips the Figure-8 table
//                       and writes a machine-readable sweep (dataset x
//                       algorithm x threads, median ms and hyperedges
//                       reached) for scripts/bench_snapshot.sh
//   NWHY_BENCH_DATASETS comma list of dataset names for the JSON sweep
#include <cstdio>

#include "bench_common.hpp"
#include "hygra/algorithms.hpp"

using namespace bench;

namespace {

std::size_t count_reached(const std::vector<nw::vertex_id_t>& parents) {
  std::size_t reached = 0;
  for (auto p : parents) reached += p != nw::null_vertex<>;
  return reached;
}

/// NWHY_BENCH_JSON mode: one record per dataset x algorithm x thread-count:
/// {"dataset", "algorithm", "threads", "median_ms", "reached",
/// "peak_rss_kb"} where `reached` counts hyperedges discovered from the
/// source (a cross-engine sanity invariant as much as a payload).  The
/// HyperBFS-relabel series runs the same engine on a degree-relabeled twin
/// through the NWHypergraph facade, translation back to external ids
/// included — the relabel-on vs relabel-off (HyperBFS) comparison is the
/// locality headline BENCH_traversal.json freezes.
int run_json_mode(const char* path) {
  FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "[bench] cannot open %s for writing\n", path);
    return 1;
  }
  const unsigned restore = nw::par::num_threads();
  std::fprintf(out, "[");
  bool first = true;
  for (const auto& d : suite()) {
    if (!dataset_selected(d->name)) continue;
    nw::vertex_id_t src = bfs_source(*d);
    NWHypergraph    relabeled(d->el);
    relabeled.relabel_by_degree();
    for (unsigned threads : env_threads()) {
      nw::par::thread_pool::set_default_concurrency(threads);
      auto emit = [&](const char* name, double ms, std::size_t reached) {
        std::fprintf(out,
                     "%s\n  {\"dataset\": \"%s\", \"algorithm\": \"%s\", \"threads\": %u, "
                     "\"median_ms\": %.4f, \"reached\": %zu, \"peak_rss_kb\": %ld}",
                     first ? "" : ",", d->name.c_str(), name, threads, ms, reached,
                     peak_rss_kb());
        first = false;
      };
      std::size_t reached = 0;
      double      ms      = time_median_ms([&] {
        auto r  = hyper_bfs(d->hyperedges, d->hypernodes, src);
        reached = count_reached(r.parents_edge);
      });
      emit("HyperBFS", ms, reached);
      ms = time_median_ms([&] {
        auto r  = relabeled.bfs(src);
        reached = count_reached(r.parents_edge);
      });
      emit("HyperBFS-relabel", ms, reached);
      ms = time_median_ms([&] {
        auto r  = adjoin_bfs(d->adjoin, src);
        reached = count_reached(r.parents_edge);
      });
      emit("AdjoinBFS", ms, reached);
      ms = time_median_ms([&] {
        auto r  = nw::hygra::hygra_bfs(d->hyperedges, d->hypernodes, src);
        reached = count_reached(r.parents_edge);
      });
      emit("HygraBFS", ms, reached);
    }
  }
  std::fprintf(out, "\n]\n");
  std::fclose(out);
  nw::par::thread_pool::set_default_concurrency(restore);
  std::fprintf(stderr, "[bench] wrote BFS sweep to %s\n", path);
  return 0;
}

}  // namespace

int main() {
  if (const char* json = std::getenv("NWHY_BENCH_JSON"); json != nullptr && *json != '\0') {
    setenv("NWHY_BENCH_REPS", "3", /*overwrite=*/0);
    return run_json_mode(json);
  }
  std::printf("Figure 8 — strong scaling, BFS (time in ms, min of %zu reps)\n",
              env_size("NWHY_BENCH_REPS", 3));
  std::printf("%-18s %8s %12s %12s %12s\n", "dataset", "threads", "HyperBFS", "AdjoinBFS",
              "HygraBFS");
  for (const auto& d : suite()) {
    nw::vertex_id_t src = bfs_source(*d);
    for (unsigned t : env_threads()) {
      nw::par::thread_pool::set_default_concurrency(t);
      double hyper = time_min_ms([&] {
        auto r = hyper_bfs(d->hyperedges, d->hypernodes, src);
        (void)r;
      });
      double adjoin = time_min_ms([&] {
        auto r = adjoin_bfs(d->adjoin, src);
        (void)r;
      });
      double hygra = time_min_ms([&] {
        auto r = nw::hygra::hygra_bfs(d->hyperedges, d->hypernodes, src);
        (void)r;
      });
      std::printf("%-18s %8u %12.2f %12.2f %12.2f\n", d->name.c_str(), t, hyper, adjoin, hygra);
    }
    auto r       = adjoin_bfs(d->adjoin, src);
    std::size_t reached = count_reached(r.parents_edge);
    std::printf("  -> source e%u reaches %zu of %zu hyperedges\n", src, reached,
                r.parents_edge.size());
  }
  return 0;
}
