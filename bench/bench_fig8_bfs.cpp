// bench/bench_fig8_bfs.cpp — reproduces Figure 8: strong scaling of
// hypergraph breadth-first search from the highest-degree hyperedge.
// Series: HyperBFS (direction-optimizing on the bipartite form), AdjoinBFS
// (direction-optimizing on the adjoin form), and the top-down HygraBFS
// comparator.
#include <cstdio>

#include "bench_common.hpp"
#include "hygra/algorithms.hpp"

using namespace bench;

int main() {
  std::printf("Figure 8 — strong scaling, BFS (time in ms, min of %zu reps)\n",
              env_size("NWHY_BENCH_REPS", 3));
  std::printf("%-18s %8s %12s %12s %12s\n", "dataset", "threads", "HyperBFS", "AdjoinBFS",
              "HygraBFS");
  for (const auto& d : suite()) {
    nw::vertex_id_t src = bfs_source(*d);
    for (unsigned t : env_threads()) {
      nw::par::thread_pool::set_default_concurrency(t);
      double hyper = time_min_ms([&] {
        auto r = hyper_bfs(d->hyperedges, d->hypernodes, src);
        (void)r;
      });
      double adjoin = time_min_ms([&] {
        auto r = adjoin_bfs(d->adjoin, src);
        (void)r;
      });
      double hygra = time_min_ms([&] {
        auto r = nw::hygra::hygra_bfs(d->hyperedges, d->hypernodes, src);
        (void)r;
      });
      std::printf("%-18s %8u %12.2f %12.2f %12.2f\n", d->name.c_str(), t, hyper, adjoin, hygra);
    }
    auto r       = adjoin_bfs(d->adjoin, src);
    std::size_t reached = 0;
    for (auto p : r.parents_edge) reached += p != nw::null_vertex<>;
    std::printf("  -> source e%u reaches %zu of %zu hyperedges\n", src, reached,
                r.parents_edge.size());
  }
  return 0;
}
