// bench/bench_betweenness.cpp — batched Brandes s-betweenness on the s-line
// graph: the exact all-sources pass versus the seed-driven sampled estimator,
// each swept over NWHY_BENCH_THREADS on a generated hypergraph's s=2 line
// graph.
//
// Operations:
//   betweenness-exact    betweenness_batched over every line-graph vertex
//                        (NWHY_BETWEENNESS_BATCH sources per frontier pass)
//   betweenness-sampled  betweenness_sampled with NWHY_BETWEENNESS_SAMPLES
//                        seed-driven sources (seed fixed, so every thread
//                        count prices the identical work)
//
//   NWHY_BENCH_JSON  path; when set the harness writes machine-readable
//                    records for scripts/bench_snapshot.sh: schema section
//                    "betweenness" of nwhy-bench-analytics-v1, one record per
//                    operation x thread-count: {"dataset", "operation", "s",
//                    "vertices", "samples", "threads", "median_ms",
//                    "peak_rss_kb"}
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"

using namespace bench;

namespace {

struct sample {
  std::string operation;
  std::size_t samples;  // 0 for the exact pass
  unsigned    threads;
  double      median_ms;
};

int run_json_mode(const char* path, const std::string& dataset, std::size_t s,
                  std::size_t vertices, const std::vector<sample>& rows) {
  FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "[bench] cannot open %s for writing\n", path);
    return 1;
  }
  std::fprintf(out, "[");
  bool first = true;
  for (const auto& r : rows) {
    std::fprintf(out,
                 "%s\n  {\"dataset\": \"%s\", \"operation\": \"%s\", \"s\": %zu, "
                 "\"vertices\": %zu, \"samples\": %zu, \"threads\": %u, "
                 "\"median_ms\": %.4f, \"peak_rss_kb\": %ld}",
                 first ? "" : ",", dataset.c_str(), r.operation.c_str(), s, vertices,
                 r.samples, r.threads, r.median_ms, peak_rss_kb());
    first = false;
  }
  std::fprintf(out, "\n]\n");
  std::fclose(out);
  std::fprintf(stderr, "[bench] wrote betweenness sweep to %s\n", path);
  return 0;
}

}  // namespace

int main() {
  install_profile_export();

  const std::size_t scale = env_size("NWHY_BENCH_SCALE", 1);
  const std::size_t ne    = 4000 * scale;
  const std::size_t nv    = 1000 * scale;
  const std::size_t s     = 2;
  const std::string name  = "Rand-betweenness";

  biedgelist<> el = gen::uniform_random_hypergraph(ne, nv, 8, 0xBC01);
  el.sort_and_unique();
  NWHypergraph hg{std::move(el)};
  auto         lg = hg.make_s_linegraph(s);
  const std::size_t n       = lg.num_vertices();
  const std::size_t samples = betweenness_samples();

  std::vector<sample> rows;
  for (unsigned threads : env_threads()) {
    nw::par::thread_pool::set_default_concurrency(threads);
    rows.push_back({"betweenness-exact", 0, threads, time_median_ms([&] {
                      auto bc = lg.s_betweenness_centrality_batched();
                      (void)bc;
                    })});
    rows.push_back({"betweenness-sampled", samples, threads, time_median_ms([&] {
                      auto bc = lg.s_betweenness_centrality_sampled(samples, 0xBC5EED);
                      (void)bc;
                    })});
  }
  nw::par::thread_pool::set_default_concurrency(
      std::max(1u, std::thread::hardware_concurrency()));

  if (const char* json = std::getenv("NWHY_BENCH_JSON"); json != nullptr && *json != '\0') {
    return run_json_mode(json, name, s, n, rows);
  }

  std::printf("s-betweenness — exact batched vs sampled (median of %zu reps)\n",
              env_size("NWHY_BENCH_REPS", 3));
  std::printf("dataset %s: s = %zu line graph, %zu vertices, %zu edges\n", name.c_str(), s, n,
              lg.num_edges());
  std::printf("%-20s %8s %8s %12s\n", "operation", "samples", "threads", "median ms");
  for (const auto& r : rows) {
    std::printf("%-20s %8zu %8u %12.4f\n", r.operation.c_str(), r.samples, r.threads,
                r.median_ms);
  }
  return 0;
}
