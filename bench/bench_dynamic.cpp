// bench/bench_dynamic.cpp — the dynamic-engine headline: applying a small
// batch of hyperedge updates through the delta overlay (and through the
// incrementally-maintained s-line graph / toplex structures) versus paying
// a full rebuild from scratch for the same batch.
//
// Operations, per batch size in {1, 16, 256}:
//   update-incremental     apply the batch via NWHypergraph::update_edge —
//                          overlay rows + incremental degree maintenance
//   update-rebuild         construct a fresh NWHypergraph from the mutated
//                          edge list (sort_and_unique + both CSRs + degrees),
//                          swept over NWHY_BENCH_THREADS
//   slinegraph-incremental incremental_slinegraph::update_edge for the batch
//   slinegraph-rebuild     full make_s_linegraph(s=2) on the mutated graph
//   toplex-incremental     incremental_toplexes::update_edge for the batch
//   toplex-rebuild         full toplexes() on the mutated graph
//   compact                batch through the overlay + compact() into a new
//                          CSR generation (the amortization escape hatch)
//
//   NWHY_BENCH_JSON  path; when set the harness writes machine-readable
//                    records for scripts/bench_snapshot.sh: schema
//                    nwhy-bench-dynamic-v1, one record per operation x batch
//                    x thread-count: {"dataset", "operation", "batch",
//                    "threads", "median_ms"}
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "nwhy/slinegraph/incremental.hpp"

using namespace bench;

namespace {

struct sample {
  std::string operation;
  std::size_t batch;
  unsigned    threads;
  double      median_ms;
};

struct update {
  nw::vertex_id_t              edge;
  std::vector<nw::vertex_id_t> members;
};

/// A deterministic batch of replacement rows over existing edge ids.
std::vector<update> make_batch(std::size_t count, std::size_t ne, std::size_t nv,
                               std::uint64_t seed) {
  nw::xoshiro256ss    rng(seed);
  std::vector<update> batch;
  batch.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    update u;
    u.edge = static_cast<nw::vertex_id_t>(rng.bounded(ne));
    const std::size_t sz = 2 + rng.bounded(8);
    for (std::size_t k = 0; k < sz; ++k) {
      u.members.push_back(static_cast<nw::vertex_id_t>(rng.bounded(nv)));
    }
    batch.push_back(std::move(u));
  }
  return batch;
}

double find_ms(const std::vector<sample>& rows, const std::string& op, std::size_t batch,
               unsigned threads) {
  for (const auto& r : rows) {
    if (r.operation == op && r.batch == batch && r.threads == threads) return r.median_ms;
  }
  return 0;
}

int run_json_mode(const char* path, const std::string& dataset,
                  const std::vector<sample>& rows) {
  FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "[bench] cannot open %s for writing\n", path);
    return 1;
  }
  std::fprintf(out, "[");
  bool first = true;
  for (const auto& r : rows) {
    std::fprintf(out,
                 "%s\n  {\"dataset\": \"%s\", \"operation\": \"%s\", \"batch\": %zu, "
                 "\"threads\": %u, \"median_ms\": %.4f, \"peak_rss_kb\": %ld}",
                 first ? "" : ",", dataset.c_str(), r.operation.c_str(), r.batch, r.threads,
                 r.median_ms, peak_rss_kb());
    first = false;
  }
  std::fprintf(out, "\n]\n");
  std::fclose(out);
  std::fprintf(stderr, "[bench] wrote dynamic-update sweep to %s\n", path);
  return 0;
}

}  // namespace

int main() {
  install_profile_export();

  const std::size_t scale = env_size("NWHY_BENCH_SCALE", 1);
  const std::size_t ne    = 20000 * scale;
  const std::size_t nv    = 4000 * scale;
  const std::string name  = "Rand-dynamic";
  biedgelist<>      base  = gen::uniform_random_hypergraph(ne, nv, 8, 0xD15C);
  base.sort_and_unique();

  const std::vector<std::size_t> batches = {1, 16, 256};
  std::vector<sample>            rows;

  for (std::size_t b : batches) {
    auto batch = make_batch(b, ne, nv, 0xBA7C0 + b);

    // Incremental paths are serial by design — one record at threads=1.
    nw::par::thread_pool::set_default_concurrency(1);
    {
      NWHypergraph dyn{biedgelist<>(base)};
      rows.push_back({"update-incremental", b, 1, time_median_ms([&] {
                        for (const auto& u : batch) dyn.update_edge(u.edge, u.members);
                      })});
    }
    {
      NWHypergraph           src{biedgelist<>(base)};
      incremental_slinegraph inc(src, 2);
      rows.push_back({"slinegraph-incremental", b, 1, time_median_ms([&] {
                        for (const auto& u : batch) inc.update_edge(u.edge, u.members);
                      })});
    }
    {
      NWHypergraph         src{biedgelist<>(base)};
      incremental_toplexes inc(src);
      rows.push_back({"toplex-incremental", b, 1, time_median_ms([&] {
                        for (const auto& u : batch) inc.update_edge(u.edge, u.members);
                      })});
    }

    // The mutated edge list the rebuild baselines start from.
    biedgelist<> mutated = [&] {
      NWHypergraph h{biedgelist<>(base)};
      for (const auto& u : batch) h.update_edge(u.edge, u.members);
      h.compact();
      return biedgelist<>(h.edge_list());
    }();

    for (unsigned threads : env_threads()) {
      nw::par::thread_pool::set_default_concurrency(threads);
      rows.push_back({"update-rebuild", b, threads, time_median_ms([&] {
                        NWHypergraph h{biedgelist<>(mutated)};
                        (void)h.edge_sizes();
                      })});
      {
        NWHypergraph h{biedgelist<>(mutated)};
        rows.push_back({"slinegraph-rebuild", b, threads, time_median_ms([&] {
                          auto lg = h.make_s_linegraph(2);
                          (void)lg.num_edges();
                        })});
        rows.push_back({"toplex-rebuild", b, threads, time_median_ms([&] {
                          (void)h.toplexes();
                        })});
      }
      rows.push_back({"compact", b, threads, time_median_ms([&] {
                        NWHypergraph h{biedgelist<>(base)};
                        for (const auto& u : batch) h.update_edge(u.edge, u.members);
                        h.compact();
                      })});
    }
  }
  nw::par::thread_pool::set_default_concurrency(
      std::max(1u, std::thread::hardware_concurrency()));

  if (const char* json = std::getenv("NWHY_BENCH_JSON"); json != nullptr && *json != '\0') {
    return run_json_mode(json, name, rows);
  }

  std::printf("Dynamic updates — incremental vs rebuild (median of %zu reps)\n",
              env_size("NWHY_BENCH_REPS", 3));
  std::printf("dataset %s: %zu hyperedges, %zu hypernodes, %zu incidences\n", name.c_str(), ne,
              nv, base.size());
  std::printf("%-24s %8s %8s %12s\n", "operation", "batch", "threads", "median ms");
  for (const auto& r : rows) {
    std::printf("%-24s %8zu %8u %12.4f\n", r.operation.c_str(), r.batch, r.threads,
                r.median_ms);
  }
  const unsigned t1 = env_threads().front();
  for (std::size_t b : batches) {
    double inc = find_ms(rows, "update-incremental", b, 1);
    double reb = find_ms(rows, "update-rebuild", b, t1);
    if (inc > 0 && reb > 0) {
      std::printf("  -> batch %zu: overlay update is %.0fx faster than a %u-thread rebuild\n", b,
                  reb / inc, t1);
    }
  }
  return 0;
}
