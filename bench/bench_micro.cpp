// bench/bench_micro.cpp — microbenchmarks of the performance-critical
// building blocks: the epoch-clearing counting hashmap against
// std::unordered_map (the data structure choice behind the hashmap s-line
// algorithm), early-exit set intersection, parallel sort, and the
// materialization pipeline (parallel thread-buffer merge, bulk SoA
// edge-list append, direct per-thread-buffers -> CSR build) whose thread
// scaling bench_snapshot.sh snapshots into BENCH_slinegraph.json.
#include <benchmark/benchmark.h>

#include <unordered_map>
#include <utility>

#include "nwhy.hpp"

namespace {

using nw::vertex_id_t;

/// Keys with a skewed repeat pattern, like hyperedge ids seen through
/// shared hypernodes.
const std::vector<vertex_id_t>& keys() {
  static std::vector<vertex_id_t> k = [] {
    nw::xoshiro256ss          rng(0xAB1E);
    std::vector<vertex_id_t> out(1 << 16);
    for (auto& x : out) x = static_cast<vertex_id_t>(rng.bounded(1 << 12));
    return out;
  }();
  return k;
}

void BM_CountingHashmap(benchmark::State& state) {
  nw::counting_hashmap<> map;
  for (auto _ : state) {
    map.clear();
    for (auto k : keys()) map.increment(k);
    std::uint64_t total = 0;
    map.for_each([&](vertex_id_t, std::uint32_t c) { total += c; });
    benchmark::DoNotOptimize(total);
  }
}

void BM_StdUnorderedMap(benchmark::State& state) {
  std::unordered_map<vertex_id_t, std::uint32_t> map;
  for (auto _ : state) {
    map.clear();
    for (auto k : keys()) ++map[k];
    std::uint64_t total = 0;
    for (auto& [key, c] : map) total += c;
    benchmark::DoNotOptimize(total);
  }
}

void BM_IntersectionFull(benchmark::State& state) {
  nw::xoshiro256ss          rng(1);
  std::vector<vertex_id_t> a(state.range(0)), b(state.range(0));
  for (auto& x : a) x = static_cast<vertex_id_t>(rng.bounded(1 << 20));
  for (auto& x : b) x = static_cast<vertex_id_t>(rng.bounded(1 << 20));
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(nw::hypergraph::intersection_size(a, b));
  }
}

void BM_IntersectionEarlyExit(benchmark::State& state) {
  nw::xoshiro256ss          rng(1);
  std::vector<vertex_id_t> a(state.range(0)), b(state.range(0));
  for (auto& x : a) x = static_cast<vertex_id_t>(rng.bounded(1 << 10));  // heavy overlap
  for (auto& x : b) x = static_cast<vertex_id_t>(rng.bounded(1 << 10));
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(nw::hypergraph::intersection_size(a, b, 2));
  }
}

void BM_ParallelSort(benchmark::State& state) {
  nw::xoshiro256ss           rng(2);
  std::vector<std::uint64_t> base(static_cast<std::size_t>(state.range(0)));
  for (auto& x : base) x = rng();
  nw::par::thread_pool pool(4);
  for (auto _ : state) {
    state.PauseTiming();
    auto data = base;
    state.ResumeTiming();
    nw::par::parallel_sort(data.begin(), data.end(), std::less<>{}, pool);
    benchmark::DoNotOptimize(data.data());
  }
}

void BM_StdSort(benchmark::State& state) {
  nw::xoshiro256ss           rng(2);
  std::vector<std::uint64_t> base(static_cast<std::size_t>(state.range(0)));
  for (auto& x : base) x = rng();
  for (auto _ : state) {
    state.PauseTiming();
    auto data = base;
    state.ResumeTiming();
    std::sort(data.begin(), data.end());
    benchmark::DoNotOptimize(data.data());
  }
}

// --- materialization pipeline kernels --------------------------------------
//
// Deterministic unique unordered pairs via a bijection: pair p maps to
// (a = p / K, b = a + 1 + p % K), so every unordered pair appears exactly
// once and ids stay < P / K + K + 1 — exactly the precondition of
// adjacency::from_unique_undirected_pairs.

constexpr std::size_t kPairs   = std::size_t{1} << 20;
constexpr std::size_t kStride  = 64;  // K in the bijection above
constexpr std::size_t kIdBound = kPairs / kStride + kStride + 1;

using pair_t = std::pair<vertex_id_t, vertex_id_t>;

/// Fill per-thread buffers with the benchmark pair set, split evenly.
void fill_pair_buffers(nw::par::per_thread<std::vector<pair_t>>& buffers) {
  const std::size_t slots = buffers.size();
  for (std::size_t t = 0; t < slots; ++t) {
    auto& buf = buffers.local(static_cast<unsigned>(t));
    buf.clear();
    for (std::size_t p = t; p < kPairs; p += slots) {
      auto a = static_cast<vertex_id_t>(p / kStride);
      auto b = static_cast<vertex_id_t>(a + 1 + p % kStride);
      buf.push_back({a, b});
    }
  }
}

/// Parallel thread-buffer merge (the concat step every construction
/// algorithm and implicit traversal funnels through).  Arg = threads.
void BM_MergeThreadVectors(benchmark::State& state) {
  nw::par::thread_pool pool(static_cast<unsigned>(state.range(0)));
  nw::par::per_thread<std::vector<pair_t>> buffers(pool);
  for (auto _ : state) {
    state.PauseTiming();
    fill_pair_buffers(buffers);
    state.ResumeTiming();
    auto merged = nw::par::merge_thread_vectors(buffers, nw::par::merge_capacity::keep, pool);
    benchmark::DoNotOptimize(merged.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kPairs));
}

/// Bulk SoA materialization: per-thread buffers -> edge_list in one
/// scan + parallel scatter (no per-element push_back).  Arg = threads.
void BM_EdgeListFromBuffers(benchmark::State& state) {
  nw::par::thread_pool pool(static_cast<unsigned>(state.range(0)));
  nw::par::per_thread<std::vector<pair_t>> buffers(pool);
  for (auto _ : state) {
    state.PauseTiming();
    fill_pair_buffers(buffers);
    state.ResumeTiming();
    auto el = nw::graph::edge_list<>::from_thread_buffers(buffers, kIdBound,
                                                          nw::par::merge_capacity::keep, pool);
    benchmark::DoNotOptimize(el.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kPairs));
}

/// Legacy per-element materialization the bulk API replaced: serial merge,
/// element-wise push_back, symmetrize, global sort.  The baseline for
/// BM_CsrFromBuffers.  Arg = threads (used only by the final CSR ctor's
/// internal sort; the funnel itself is serial — that is the point).
void BM_CsrLegacyRoundtrip(benchmark::State& state) {
  nw::par::thread_pool pool(static_cast<unsigned>(state.range(0)));
  nw::par::per_thread<std::vector<pair_t>> buffers(pool);
  for (auto _ : state) {
    state.PauseTiming();
    fill_pair_buffers(buffers);
    state.ResumeTiming();
    nw::graph::edge_list<> el(kIdBound);
    buffers.for_each([&](std::vector<pair_t>& buf) {
      for (auto [a, b] : buf) el.push_back(a, b);
    });
    el.symmetrize();
    el.sort_and_unique();
    nw::graph::adjacency<> csr(el, kIdBound);
    benchmark::DoNotOptimize(csr.num_edges());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kPairs));
}

/// Direct per-thread-buffers -> symmetric CSR (degree histogram, scan,
/// scatter, per-row sort) — skips the edge_list round-trip entirely.
/// Arg = threads.
void BM_CsrFromBuffers(benchmark::State& state) {
  nw::par::thread_pool pool(static_cast<unsigned>(state.range(0)));
  nw::par::per_thread<std::vector<pair_t>> buffers(pool);
  for (auto _ : state) {
    state.PauseTiming();
    fill_pair_buffers(buffers);
    state.ResumeTiming();
    auto csr = nw::graph::adjacency<>::from_unique_undirected_pairs(
        buffers, kIdBound, nw::par::merge_capacity::keep, pool);
    benchmark::DoNotOptimize(csr.num_edges());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kPairs));
}

// --- frontier engine kernels ------------------------------------------------
//
// The sparse<->dense conversions and the scout (degree-sum) pass behind
// every direction-optimizing BFS level.  kUniverse bits ~ a mid-size
// frontier universe; the member pattern is a ~1/8-dense pseudo-random
// subset (the regime where a real traversal actually converts).

constexpr std::size_t kUniverse = std::size_t{1} << 22;

const std::vector<vertex_id_t>& frontier_members() {
  static std::vector<vertex_id_t> ids = [] {
    nw::xoshiro256ss         rng(0xF407);
    std::vector<vertex_id_t> out;
    out.reserve(kUniverse / 8);
    for (std::size_t i = 0; i < kUniverse; ++i) {
      if ((rng() & 7u) == 0) out.push_back(static_cast<vertex_id_t>(i));
    }
    return out;
  }();
  return ids;
}

const nw::bitmap& frontier_bits() {
  static nw::bitmap bm = [] {
    nw::bitmap b(kUniverse);
    for (auto v : frontier_members()) b.set(v);
    return b;
  }();
  return bm;
}

/// Serial per-bit scan — the dense->sparse conversion every pre-frontier
/// traversal loop did implicitly (the baseline the parallel conversion
/// must beat).
void BM_FrontierDenseToSparseSerial(benchmark::State& state) {
  const nw::bitmap&        bm = frontier_bits();
  std::vector<vertex_id_t> out;
  for (auto _ : state) {
    out.clear();
    for (std::size_t i = 0; i < bm.size(); ++i) {
      if (bm.get(i)) out.push_back(static_cast<vertex_id_t>(i));
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kUniverse));
}

/// Parallel dense->sparse: per-word popcount + scan + scatter.
/// Arg = threads.
void BM_FrontierDenseToSparse(benchmark::State& state) {
  nw::par::thread_pool     pool(static_cast<unsigned>(state.range(0)));
  const nw::bitmap&        bm = frontier_bits();
  std::vector<vertex_id_t> out;
  std::vector<std::size_t> scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(nw::par::bitmap_to_sparse(bm, out, scratch, pool));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kUniverse));
}

/// Parallel sparse->dense: parallel word clear + atomic bit scatter.
/// Arg = threads.
void BM_FrontierSparseToDense(benchmark::State& state) {
  nw::par::thread_pool pool(static_cast<unsigned>(state.range(0)));
  const auto&          ids = frontier_members();
  nw::bitmap           bm(kUniverse);
  for (auto _ : state) {
    nw::par::bitmap_fill_from(bm, ids, pool);
    benchmark::DoNotOptimize(bm.count());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * ids.size()));
}

/// Scout count (frontier degree sum) as a parallel reduction over the
/// sparse ids — what the alpha test costs when the fused per-thread
/// accumulation is NOT available (e.g. a frontier assembled externally).
/// Arg = threads; Arg 1 doubles as the serial-degree-pass baseline.
void BM_FrontierScoutCount(benchmark::State& state) {
  nw::par::thread_pool pool(static_cast<unsigned>(state.range(0)));
  const auto&          ids = frontier_members();
  static const std::vector<std::uint32_t> degrees = [] {
    nw::xoshiro256ss           rng(0xDE6);
    std::vector<std::uint32_t> d(kUniverse);
    for (auto& x : d) x = static_cast<std::uint32_t>(rng.bounded(64));
    return d;
  }();
  for (auto _ : state) {
    std::size_t sum = nw::par::parallel_reduce(
        0, ids.size(), std::size_t{0},
        [&](std::size_t acc, std::size_t i) { return acc + degrees[ids[i]]; },
        [](std::size_t a, std::size_t b) { return a + b; }, pool);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * ids.size()));
}

}  // namespace

BENCHMARK(BM_CountingHashmap)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StdUnorderedMap)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_IntersectionFull)->Arg(1 << 10)->Arg(1 << 14);
BENCHMARK(BM_IntersectionEarlyExit)->Arg(1 << 10)->Arg(1 << 14);
BENCHMARK(BM_ParallelSort)->Arg(1 << 18)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StdSort)->Arg(1 << 18)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MergeThreadVectors)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EdgeListFromBuffers)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CsrLegacyRoundtrip)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CsrFromBuffers)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FrontierDenseToSparseSerial)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FrontierDenseToSparse)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FrontierSparseToDense)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FrontierScoutCount)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
