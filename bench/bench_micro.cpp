// bench/bench_micro.cpp — microbenchmarks of the performance-critical
// building blocks: the epoch-clearing counting hashmap against
// std::unordered_map (the data structure choice behind the hashmap s-line
// algorithm), early-exit set intersection, and parallel sort.
#include <benchmark/benchmark.h>

#include <unordered_map>

#include "nwhy.hpp"

namespace {

using nw::vertex_id_t;

/// Keys with a skewed repeat pattern, like hyperedge ids seen through
/// shared hypernodes.
const std::vector<vertex_id_t>& keys() {
  static std::vector<vertex_id_t> k = [] {
    nw::xoshiro256ss          rng(0xAB1E);
    std::vector<vertex_id_t> out(1 << 16);
    for (auto& x : out) x = static_cast<vertex_id_t>(rng.bounded(1 << 12));
    return out;
  }();
  return k;
}

void BM_CountingHashmap(benchmark::State& state) {
  nw::counting_hashmap<> map;
  for (auto _ : state) {
    map.clear();
    for (auto k : keys()) map.increment(k);
    std::uint64_t total = 0;
    map.for_each([&](vertex_id_t, std::uint32_t c) { total += c; });
    benchmark::DoNotOptimize(total);
  }
}

void BM_StdUnorderedMap(benchmark::State& state) {
  std::unordered_map<vertex_id_t, std::uint32_t> map;
  for (auto _ : state) {
    map.clear();
    for (auto k : keys()) ++map[k];
    std::uint64_t total = 0;
    for (auto& [key, c] : map) total += c;
    benchmark::DoNotOptimize(total);
  }
}

void BM_IntersectionFull(benchmark::State& state) {
  nw::xoshiro256ss          rng(1);
  std::vector<vertex_id_t> a(state.range(0)), b(state.range(0));
  for (auto& x : a) x = static_cast<vertex_id_t>(rng.bounded(1 << 20));
  for (auto& x : b) x = static_cast<vertex_id_t>(rng.bounded(1 << 20));
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(nw::hypergraph::intersection_size(a, b));
  }
}

void BM_IntersectionEarlyExit(benchmark::State& state) {
  nw::xoshiro256ss          rng(1);
  std::vector<vertex_id_t> a(state.range(0)), b(state.range(0));
  for (auto& x : a) x = static_cast<vertex_id_t>(rng.bounded(1 << 10));  // heavy overlap
  for (auto& x : b) x = static_cast<vertex_id_t>(rng.bounded(1 << 10));
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(nw::hypergraph::intersection_size(a, b, 2));
  }
}

void BM_ParallelSort(benchmark::State& state) {
  nw::xoshiro256ss           rng(2);
  std::vector<std::uint64_t> base(static_cast<std::size_t>(state.range(0)));
  for (auto& x : base) x = rng();
  nw::par::thread_pool pool(4);
  for (auto _ : state) {
    state.PauseTiming();
    auto data = base;
    state.ResumeTiming();
    nw::par::parallel_sort(data.begin(), data.end(), std::less<>{}, pool);
    benchmark::DoNotOptimize(data.data());
  }
}

void BM_StdSort(benchmark::State& state) {
  nw::xoshiro256ss           rng(2);
  std::vector<std::uint64_t> base(static_cast<std::size_t>(state.range(0)));
  for (auto& x : base) x = rng();
  for (auto _ : state) {
    state.PauseTiming();
    auto data = base;
    state.ResumeTiming();
    std::sort(data.begin(), data.end());
    benchmark::DoNotOptimize(data.data());
  }
}

}  // namespace

BENCHMARK(BM_CountingHashmap)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StdUnorderedMap)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_IntersectionFull)->Arg(1 << 10)->Arg(1 << 14);
BENCHMARK(BM_IntersectionEarlyExit)->Arg(1 << 10)->Arg(1 << 14);
BENCHMARK(BM_ParallelSort)->Arg(1 << 18)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StdSort)->Arg(1 << 18)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
