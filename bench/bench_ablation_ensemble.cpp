// bench/bench_ablation_ensemble.cpp — the IPDPS'22 ensemble algorithm: one
// counting pass emitting L_s for a whole vector of s values, versus
// reconstructing each s-line graph independently, versus slicing a weighted
// 1-line graph by threshold.  The ensemble's win grows with the number of
// requested s values, since overlap counting is shared.
#include <benchmark/benchmark.h>

#include "nwhy.hpp"

namespace {

using namespace nw::hypergraph;

struct fixture {
  biadjacency<0>           hyperedges;
  biadjacency<1>           hypernodes;
  std::vector<std::size_t> degrees;
};

const fixture& data() {
  static fixture f = [] {
    auto el = gen::powerlaw_hypergraph(15000, 8000, 300, 1.6, 1.0, 0xAB1F);
    el.sort_and_unique();
    fixture out{biadjacency<0>(el), biadjacency<1>(el), {}};
    out.degrees = out.hyperedges.degrees();
    return out;
  }();
  return f;
}

std::vector<std::size_t> s_values(std::int64_t k) {
  std::vector<std::size_t> out;
  for (std::int64_t s = 1; s <= k; ++s) out.push_back(static_cast<std::size_t>(s));
  return out;
}

void BM_EnsembleOnePass(benchmark::State& state) {
  const auto& f  = data();
  auto        sv = s_values(state.range(0));
  for (auto _ : state) {
    auto results = to_two_graph_ensemble(f.hyperedges, f.hypernodes, f.degrees, sv);
    benchmark::DoNotOptimize(results.size());
  }
}

void BM_RepeatedSinglePass(benchmark::State& state) {
  const auto& f  = data();
  auto        sv = s_values(state.range(0));
  for (auto _ : state) {
    std::size_t total = 0;
    for (auto s : sv) {
      total += to_two_graph_hashmap(f.hyperedges, f.hypernodes, f.degrees, s).size();
    }
    benchmark::DoNotOptimize(total);
  }
}

void BM_WeightedThenThreshold(benchmark::State& state) {
  const auto& f  = data();
  auto        sv = s_values(state.range(0));
  for (auto _ : state) {
    auto        weighted = to_two_graph_weighted(f.hyperedges, f.hypernodes, f.degrees, 1);
    std::size_t total    = 0;
    for (auto s : sv) total += threshold_weighted(weighted, s).size();
    benchmark::DoNotOptimize(total);
  }
}

}  // namespace

BENCHMARK(BM_EnsembleOnePass)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RepeatedSinglePass)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WeightedThenThreshold)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
