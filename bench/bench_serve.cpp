// bench/bench_serve.cpp — nwhy_serve query-server throughput/latency: an
// in-process server on a Unix socket, hammered by a closed-loop multi-client
// load generator, per operation x client-count.
//
// Operations:
//   ping        pure protocol + dispatch overhead (no graph work)
//   stats       cheapest graph op (pins a generation, four u64s back)
//   neighbors   point query: one s-overlap expansion, s=2
//   s_distance  implicit s-BFS between random endpoints, s=2
//   bfs         whole-graph composed BFS summary from a random source
//   mixed       the nwhy_serve load-mode mix (all graph ops, seed-driven)
//
// Each record carries client-observed p50/p99 latency and aggregate QPS —
// the numbers BENCH_serve.json freezes.  Clients are closed-loop (next
// request only after the previous reply), so QPS ~= clients / mean-latency
// and the client sweep shows how the worker pool absorbs concurrency.
//
//   NWHY_BENCH_THREADS         client counts to sweep (default "1,2,4,8")
//   NWHY_BENCH_SERVE_REQUESTS  requests per client for cheap ops (default 400;
//                              whole-graph ops run requests/10)
//   NWHY_BENCH_JSON  path; when set the harness writes machine-readable
//                    records for scripts/bench_snapshot.sh: schema
//                    nwhy-bench-serve-v1, one record per operation x
//                    client-count: {"dataset", "operation", "clients",
//                    "workers", "requests", "qps", "p50_ms", "p99_ms",
//                    "peak_rss_kb"}
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"

using namespace bench;
namespace sv = nw::hypergraph::serve;

namespace {

struct sample {
  std::string operation;
  unsigned    clients;
  unsigned    workers;
  std::size_t requests;  ///< total across all clients
  double      qps;
  double      p50_ms;
  double      p99_ms;
};

/// One closed-loop client: `requests` queries of one operation kind,
/// recording a wall-clock latency per reply.
void client_loop(const std::string& addr, const std::string& op, std::size_t ne,
                 std::uint64_t seed, std::size_t requests, std::vector<double>& latencies,
                 std::atomic<std::size_t>& errors) {
  sv::client c;
  c.connect(addr);
  nw::xoshiro256ss rng(seed);
  latencies.reserve(requests);
  for (std::size_t i = 0; i < requests; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    std::optional<sv::client_reply> r;
    if (op == "ping") {
      r = c.ping();
    } else if (op == "stats") {
      r = c.stats(0);
    } else if (op == "neighbors") {
      r = c.neighbors(0, 2, rng.bounded(ne));
    } else if (op == "s_distance") {
      r = c.s_distance(0, 2, rng.bounded(ne), rng.bounded(ne));
    } else if (op == "bfs") {
      r = c.bfs(0, rng.bounded(ne));
    } else {  // mixed: the nwhy_serve load-mode distribution
      switch (rng.bounded(6)) {
        case 0: r = c.stats(0); break;
        case 1: r = c.neighbors(0, 1 + rng.bounded(3), rng.bounded(ne)); break;
        case 2: r = c.s_distance(0, 1 + rng.bounded(3), rng.bounded(ne), rng.bounded(ne)); break;
        case 3: r = c.bfs(0, rng.bounded(ne)); break;
        case 4: r = c.s_components(0, 1 + rng.bounded(3)); break;
        default:
          r = c.centrality(0, 1 + rng.bounded(3), sv::centrality_kind::harmonic,
                           rng.bounded(ne));
          break;
      }
    }
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    if (!r || !r->ok()) {
      ++errors;
    } else {
      latencies.push_back(ms);
    }
  }
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const std::size_t idx = std::min(sorted.size() - 1,
                                   static_cast<std::size_t>(p * (sorted.size() - 1)));
  return sorted[idx];
}

int run_json_mode(const char* path, const std::string& dataset,
                  const std::vector<sample>& rows) {
  FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "[bench] cannot open %s for writing\n", path);
    return 1;
  }
  std::fprintf(out, "[");
  bool first = true;
  for (const auto& r : rows) {
    std::fprintf(out,
                 "%s\n  {\"dataset\": \"%s\", \"operation\": \"%s\", \"clients\": %u, "
                 "\"workers\": %u, \"requests\": %zu, \"qps\": %.1f, \"p50_ms\": %.4f, "
                 "\"p99_ms\": %.4f, \"peak_rss_kb\": %ld}",
                 first ? "" : ",", dataset.c_str(), r.operation.c_str(), r.clients, r.workers,
                 r.requests, r.qps, r.p50_ms, r.p99_ms, peak_rss_kb());
    first = false;
  }
  std::fprintf(out, "\n]\n");
  std::fclose(out);
  std::fprintf(stderr, "[bench] wrote serve load sweep to %s\n", path);
  return 0;
}

}  // namespace

int main() {
  install_profile_export();

  // One dataset (the first selected) — the serve sweep is about the server,
  // not the dataset matrix.
  const dataset* d = nullptr;
  for (const auto& ds : suite()) {
    if (dataset_selected(ds->name)) {
      d = ds.get();
      break;
    }
  }
  if (d == nullptr) {
    std::fprintf(stderr, "[bench] no dataset selected (NWHY_BENCH_DATASETS)\n");
    return 1;
  }
  NWHypergraph h{biedgelist<>(d->el)};
  const std::size_t ne = h.num_hyperedges();

  sv::server::options opt;
  opt.unix_path      = "/tmp/nwhy_bench_serve_" + std::to_string(::getpid()) + ".sock";
  opt.threads        = std::max(1u, std::thread::hardware_concurrency());
  opt.queue_capacity = 4096;
  sv::server srv(opt);
  srv.publish(0, sv::make_serve_graph(h));

  const std::size_t base_requests = env_size("NWHY_BENCH_SERVE_REQUESTS", 400);
  const char*       ops[]         = {"ping", "stats", "neighbors", "s_distance", "bfs", "mixed"};

  std::vector<sample> rows;
  for (const char* op : ops) {
    // Whole-graph traversals per request: keep the sweep bounded.
    const bool  heavy    = std::string(op) == "bfs" || std::string(op) == "mixed" ||
                           std::string(op) == "s_distance";
    const std::size_t per_client = std::max<std::size_t>(10, heavy ? base_requests / 10
                                                                   : base_requests);
    for (unsigned clients : env_threads()) {
      std::vector<std::vector<double>> lat(clients);
      std::atomic<std::size_t>         errors{0};
      std::vector<std::thread>         threads;
      const auto                       t0 = std::chrono::steady_clock::now();
      for (unsigned c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
          client_loop(srv.address(), op, ne, 0x6e7b0000ull + c, per_client, lat[c], errors);
        });
      }
      for (auto& t : threads) t.join();
      const double elapsed_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

      std::vector<double> all;
      for (auto& v : lat) all.insert(all.end(), v.begin(), v.end());
      std::sort(all.begin(), all.end());
      if (errors.load() != 0) {
        std::fprintf(stderr, "[bench] %zu failed requests for op %s at %u clients\n",
                     errors.load(), op, clients);
        return 1;
      }
      sample s;
      s.operation = op;
      s.clients   = clients;
      s.workers   = srv.num_workers();
      s.requests  = all.size();
      s.qps       = elapsed_s > 0 ? static_cast<double>(all.size()) / elapsed_s : 0.0;
      s.p50_ms    = percentile(all, 0.50);
      s.p99_ms    = percentile(all, 0.99);
      rows.push_back(s);
    }
  }
  srv.stop();

  if (const char* json = std::getenv("NWHY_BENCH_JSON"); json != nullptr && *json != '\0') {
    return run_json_mode(json, d->name, rows);
  }

  std::printf("nwhy_serve load sweep — dataset %s: %zu hyperedges, %zu hypernodes, "
              "%u workers\n",
              d->name.c_str(), ne, h.num_hypernodes(), srv.num_workers());
  std::printf("%-12s %8s %10s %12s %12s %12s\n", "operation", "clients", "requests", "qps",
              "p50 ms", "p99 ms");
  for (const auto& r : rows) {
    std::printf("%-12s %8u %10zu %12.1f %12.4f %12.4f\n", r.operation.c_str(), r.clients,
                r.requests, r.qps, r.p50_ms, r.p99_ms);
  }
  return 0;
}
