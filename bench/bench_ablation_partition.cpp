// bench/bench_ablation_partition.cpp — ablation A (Sec. III-D): blocked vs
// cyclic partitioning on a skewed, degree-sorted workload.
//
// The paper's claim: with hyperedges sorted by degree, assigning contiguous
// blocks of ids to threads is "problematic ... some of the threads will
// have highly-unbalanced workload due to assignment of high-degree
// hyperedges to first few threads", while the cyclic range's strided
// assignment spreads the hubs.
//
// A one-physical-core container cannot show the imbalance in wall time (the
// OS serializes the threads anyway), so each benchmark computes the
// *assigned-work imbalance* of its static partitioning analytically:
//   imbalance = max work assigned to one thread / (total work / threads),
// reported as a counter (1.0 = perfect).  Wall time of the sweep is still
// measured so the counter has a benchmark to hang off.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "nwhy.hpp"

namespace {

using namespace nw::hypergraph;

/// Degree-descending hyperedge size sequence of a skewed hypergraph — the
/// exact layout relabel-by-degree produces.
const std::vector<std::size_t>& sorted_degrees() {
  static std::vector<std::size_t> degrees = [] {
    auto el = gen::powerlaw_hypergraph(200000, 50000, 20000, 1.8, 1.0, 0xAB1A);
    el.sort_and_unique();
    biadjacency<0> he(el);
    auto           d = he.degrees();
    std::sort(d.begin(), d.end(), std::greater<>{});
    return d;
  }();
  return degrees;
}

double imbalance(const std::vector<std::uint64_t>& per_thread) {
  std::uint64_t total = 0, worst = 0;
  for (auto w : per_thread) {
    total += w;
    worst = std::max(worst, w);
  }
  if (total == 0) return 1.0;
  return static_cast<double>(worst) * static_cast<double>(per_thread.size()) /
         static_cast<double>(total);
}

/// Static blocked: thread t owns the contiguous slice [t*block, (t+1)*block).
void BM_StaticBlockedAssignment(benchmark::State& state) {
  const auto&       d       = sorted_degrees();
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  double            result  = 1.0;
  for (auto _ : state) {
    std::vector<std::uint64_t> work(threads, 0);
    const std::size_t          block = (d.size() + threads - 1) / threads;
    for (std::size_t i = 0; i < d.size(); ++i) work[i / block] += d[i];
    benchmark::DoNotOptimize(work.data());
    result = imbalance(work);
  }
  state.counters["imbalance"] = result;
}

/// Cyclic: thread t owns ids {t, t + threads, t + 2*threads, ...} — the
/// paper's cyclic range with stride = number of threads.
void BM_CyclicAssignment(benchmark::State& state) {
  const auto&       d       = sorted_degrees();
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  double            result  = 1.0;
  for (auto _ : state) {
    std::vector<std::uint64_t> work(threads, 0);
    for (std::size_t i = 0; i < d.size(); ++i) work[i % threads] += d[i];
    benchmark::DoNotOptimize(work.data());
    result = imbalance(work);
  }
  state.counters["imbalance"] = result;
}

/// Dynamic blocked chunks (the tbb::auto_partitioner analog): chunks of
/// grain g handed out in order; model the greedy longest-processing-time
/// bound by assigning each chunk to the currently least-loaded thread —
/// the balance a work-stealing scheduler converges to.
void BM_DynamicChunkAssignment(benchmark::State& state) {
  const auto&       d       = sorted_degrees();
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  const std::size_t grain   = std::max<std::size_t>(1, d.size() / (threads * 8));
  double            result  = 1.0;
  for (auto _ : state) {
    std::vector<std::uint64_t> work(threads, 0);
    for (std::size_t chunk = 0; chunk < d.size(); chunk += grain) {
      std::uint64_t chunk_work = 0;
      for (std::size_t i = chunk; i < std::min(chunk + grain, d.size()); ++i) chunk_work += d[i];
      auto least = std::min_element(work.begin(), work.end());
      *least += chunk_work;
    }
    benchmark::DoNotOptimize(work.data());
    result = imbalance(work);
  }
  state.counters["imbalance"] = result;
}

}  // namespace

BENCHMARK(BM_StaticBlockedAssignment)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CyclicAssignment)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DynamicChunkAssignment)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
