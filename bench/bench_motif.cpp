// bench/bench_motif.cpp — hypergraph triad/wedge census over the bipartite
// form: one per-wedge parallel_for over the hypernode centers with per-thread
// integer counters, swept over NWHY_BENCH_THREADS.
//
// Operations:
//   motif-census  count_motifs over the compacted CSR pair (wedges, triads,
//                 open wedges, butterflies in one pass)
//
//   NWHY_BENCH_JSON  path; when set the harness writes machine-readable
//                    records for scripts/bench_snapshot.sh: schema section
//                    "motif" of nwhy-bench-analytics-v1, one record per
//                    thread-count: {"dataset", "operation", "wedges",
//                    "threads", "median_ms", "peak_rss_kb"}
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"

using namespace bench;

namespace {

struct sample {
  std::string operation;
  unsigned    threads;
  double      median_ms;
};

int run_json_mode(const char* path, const std::string& dataset, std::uint64_t wedges,
                  const std::vector<sample>& rows) {
  FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "[bench] cannot open %s for writing\n", path);
    return 1;
  }
  std::fprintf(out, "[");
  bool first = true;
  for (const auto& r : rows) {
    std::fprintf(out,
                 "%s\n  {\"dataset\": \"%s\", \"operation\": \"%s\", \"wedges\": %llu, "
                 "\"threads\": %u, \"median_ms\": %.4f, \"peak_rss_kb\": %ld}",
                 first ? "" : ",", dataset.c_str(), r.operation.c_str(),
                 static_cast<unsigned long long>(wedges), r.threads, r.median_ms,
                 peak_rss_kb());
    first = false;
  }
  std::fprintf(out, "\n]\n");
  std::fclose(out);
  std::fprintf(stderr, "[bench] wrote motif sweep to %s\n", path);
  return 0;
}

}  // namespace

int main() {
  install_profile_export();

  const std::size_t scale = env_size("NWHY_BENCH_SCALE", 1);
  const std::size_t ne    = 20000 * scale;
  const std::size_t nv    = 4000 * scale;
  const std::string name  = "Rand-motif";

  biedgelist<> el = gen::uniform_random_hypergraph(ne, nv, 8, 0x30F1);
  el.sort_and_unique();
  NWHypergraph hg{std::move(el)};

  motif_census        census{};
  std::vector<sample> rows;
  for (unsigned threads : env_threads()) {
    nw::par::thread_pool::set_default_concurrency(threads);
    rows.push_back({"motif-census", threads, time_median_ms([&] {
                      census = hg.motifs();
                    })});
  }
  nw::par::thread_pool::set_default_concurrency(
      std::max(1u, std::thread::hardware_concurrency()));

  if (const char* json = std::getenv("NWHY_BENCH_JSON"); json != nullptr && *json != '\0') {
    return run_json_mode(json, name, census.wedges, rows);
  }

  std::printf("motif census — wedges/triads/butterflies (median of %zu reps)\n",
              env_size("NWHY_BENCH_REPS", 3));
  std::printf("dataset %s: %zu hyperedges, %zu hypernodes\n", name.c_str(), ne, nv);
  std::printf("census: %llu wedges, %llu triads, %llu open, %llu butterflies\n",
              static_cast<unsigned long long>(census.wedges),
              static_cast<unsigned long long>(census.triads),
              static_cast<unsigned long long>(census.open_wedges),
              static_cast<unsigned long long>(census.butterflies));
  std::printf("%-16s %8s %12s\n", "operation", "threads", "median ms");
  for (const auto& r : rows) {
    std::printf("%-16s %8u %12.4f\n", r.operation.c_str(), r.threads, r.median_ms);
  }
  return 0;
}
