// bench/bench_ablation_spgemm.cpp — the algebraic route (thresholded
// B·Bᵗ SpGEMM) against the specialized hashmap kernel for s-line graph
// construction.  The SpGEMM computes every overlap in both triangles plus
// the diagonal; the hashmap kernel counts only j > i pairs and filters by
// the degree bound — this bench quantifies what the specialization buys.
#include <benchmark/benchmark.h>

#include "nwhy.hpp"

namespace {

using namespace nw::hypergraph;

struct fixture {
  biedgelist<>             el;
  biadjacency<0>           hyperedges;
  biadjacency<1>           hypernodes;
  std::vector<std::size_t> degrees;
};

const fixture& data() {
  static fixture f = [] {
    auto el = gen::powerlaw_hypergraph(12000, 7000, 200, 1.6, 1.0, 0xAB21);
    el.sort_and_unique();
    fixture out{el, biadjacency<0>(el), biadjacency<1>(el), {}};
    out.degrees = out.hyperedges.degrees();
    return out;
  }();
  return f;
}

void BM_Hashmap(benchmark::State& state) {
  std::size_t s = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto el = to_two_graph_hashmap(data().hyperedges, data().hypernodes, data().degrees, s);
    benchmark::DoNotOptimize(el.size());
  }
}

void BM_Spgemm(benchmark::State& state) {
  std::size_t s = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto el = to_two_graph_spgemm(data().el, s);
    benchmark::DoNotOptimize(el.size());
  }
}

void BM_SpgemmProductOnly(benchmark::State& state) {
  // The raw B·Bᵗ cost, without thresholding/extraction.
  auto b  = nw::sparse::csr_matrix<std::uint32_t>::from_incidence(data().el);
  auto bt = b.transpose();
  for (auto _ : state) {
    auto c = b.multiply(bt);
    benchmark::DoNotOptimize(c.num_nonzeros());
  }
}

}  // namespace

BENCHMARK(BM_Hashmap)->Arg(2)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Spgemm)->Arg(2)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SpgemmProductOnly)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
