// bench/bench_ablation_implicit.cpp — implicit s-line traversal vs
// materialize-then-run: when a single traversal-shaped query is needed,
// is it worth building L_s(H)?  The materialized route pays construction +
// symmetrize + CSR once and then queries are cheap; the implicit route
// re-counts overlaps per visited hyperedge but allocates nothing.
#include <benchmark/benchmark.h>

#include "nwhy.hpp"

namespace {

using namespace nw::hypergraph;

const NWHypergraph& data() {
  static NWHypergraph hg(gen::powerlaw_hypergraph(20000, 10000, 400, 1.6, 1.0, 0xAB20));
  return hg;
}

/// Distance endpoints: the two largest hyperedges, so they stay active for
/// every benchmarked s and the query does real traversal work.
std::pair<nw::vertex_id_t, nw::vertex_id_t> endpoints() {
  const auto&     sizes = data().edge_sizes();
  nw::vertex_id_t a = 0, b = 1;
  for (std::size_t e = 0; e < sizes.size(); ++e) {
    if (sizes[e] > sizes[a]) {
      b = a;
      a = static_cast<nw::vertex_id_t>(e);
    } else if (sizes[e] > sizes[b]) {
      b = static_cast<nw::vertex_id_t>(e);
    }
  }
  return {a, b};
}

void BM_ComponentsMaterialized(benchmark::State& state) {
  std::size_t s = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto lg     = data().make_s_linegraph(s);
    auto labels = lg.s_connected_components();
    benchmark::DoNotOptimize(labels.data());
  }
}

void BM_ComponentsImplicit(benchmark::State& state) {
  std::size_t s = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto labels = data().s_connected_components_implicit(s);
    benchmark::DoNotOptimize(labels.data());
  }
}

void BM_DistanceMaterialized(benchmark::State& state) {
  std::size_t s        = static_cast<std::size_t>(state.range(0));
  auto [src, dst]      = endpoints();
  for (auto _ : state) {
    auto lg = data().make_s_linegraph(s);
    auto d  = lg.s_distance(src, dst);
    benchmark::DoNotOptimize(d);
  }
}

void BM_DistanceImplicit(benchmark::State& state) {
  std::size_t s   = static_cast<std::size_t>(state.range(0));
  auto [src, dst] = endpoints();
  for (auto _ : state) {
    auto d = data().s_distance_implicit(s, src, dst);
    benchmark::DoNotOptimize(d);
  }
}

}  // namespace

BENCHMARK(BM_ComponentsMaterialized)->Arg(2)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ComponentsImplicit)->Arg(2)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DistanceMaterialized)->Arg(2)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DistanceImplicit)->Arg(2)->Arg(8)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
