// bench/bench_fig9_slinegraph.cpp — reproduces Figure 9: runtime of s-line
// graph construction relative to the Hashmap algorithm.
//
// Following Sec. IV-D exactly: each of the four algorithms (Hashmap
// [IPDPS'22], Intersection [HiPC'21], Algorithm 1 = queue hashmap,
// Algorithm 2 = queue two-phase) is run under both blocked-range and
// cyclic-range partitioning, with hyperedge ids unpermuted and relabeled by
// degree in ascending and descending order; only the fastest configuration
// per algorithm is reported, normalized to the Hashmap algorithm's fastest.
//
//   NWHY_BENCH_SVALUES  comma list of s values (default "2,8")
//   NWHY_FIG9_FULL      set to 1 to sweep all 6 configs per algorithm
//                       (default sweeps blocked/cyclic x {none, desc})
//   NWHY_BENCH_JSON     path; when set the harness skips the Figure-9 table
//                       and instead writes a machine-readable sweep
//                       (dataset x algorithm x s x threads, median ms and
//                       pairs emitted) for scripts/bench_snapshot.sh
//   NWHY_BENCH_DATASETS comma list of dataset names to include in the JSON
//                       sweep (default: all six)
#include <cstdio>
#include <memory>
#include <utility>

#include "bench_common.hpp"
#include "nwgraph/relabel.hpp"

using namespace bench;
using nw::vertex_id_t;

namespace {

std::vector<std::size_t> env_svalues() {
  std::vector<std::size_t> out;
  const char*              v = std::getenv("NWHY_BENCH_SVALUES");
  std::string              s = v ? v : "2,8";
  std::size_t              pos = 0;
  while (pos < s.size()) {
    std::size_t next = s.find(',', pos);
    if (next == std::string::npos) next = s.size();
    long n = std::atol(s.substr(pos, next - pos).c_str());
    if (n > 0) out.push_back(static_cast<std::size_t>(n));
    pos = next + 1;
  }
  if (out.empty()) out = {2, 8};
  return out;
}

/// A dataset view with hyperedge ids optionally relabeled by degree.
struct labeled_view {
  const biadjacency<0>*    hyperedges;
  const biadjacency<1>*    hypernodes;
  std::vector<std::size_t> degrees;
  std::vector<vertex_id_t> queue;  // the work queue: all hyperedge ids

  // Owning storage for relabeled variants.
  std::unique_ptr<biadjacency<0>> own_edges;
  std::unique_ptr<biadjacency<1>> own_nodes;
};

labeled_view make_view(const dataset& d, nw::graph::degree_order order, bool relabel) {
  labeled_view v;
  if (!relabel) {
    v.hyperedges = &d.hyperedges;
    v.hypernodes = &d.hypernodes;
    v.degrees    = d.edge_degrees;
  } else {
    auto perm = nw::graph::degree_permutation(d.edge_degrees, order);
    biedgelist<> rel(d.el.num_vertices(0), d.el.num_vertices(1));
    rel.reserve(d.el.size());
    for (std::size_t i = 0; i < d.el.size(); ++i) {
      auto [e, n] = d.el[i];
      rel.push_back(perm[e], n);
    }
    rel.sort_and_unique();
    v.own_edges  = std::make_unique<biadjacency<0>>(rel);
    v.own_nodes  = std::make_unique<biadjacency<1>>(rel);
    v.hyperedges = v.own_edges.get();
    v.hypernodes = v.own_nodes.get();
    v.degrees    = v.hyperedges->degrees();
  }
  v.queue.resize(v.hyperedges->size());
  for (std::size_t i = 0; i < v.queue.size(); ++i) v.queue[i] = static_cast<vertex_id_t>(i);
  return v;
}

enum class algo { hashmap, intersection, queue_hashmap, queue_intersection };

template <class Partition>
std::size_t run_algo(algo a, const labeled_view& v, std::size_t s, Partition part) {
  switch (a) {
    case algo::hashmap:
      return to_two_graph_hashmap(*v.hyperedges, *v.hypernodes, v.degrees, s, part).size();
    case algo::intersection:
      return to_two_graph_intersection(*v.hyperedges, *v.hypernodes, v.degrees, s,
                                       v.hyperedges->size(), part)
          .size();
    case algo::queue_hashmap:
      return to_two_graph_queue_hashmap(v.queue, *v.hyperedges, *v.hypernodes, v.degrees, s,
                                        v.hyperedges->size(), part)
          .size();
    case algo::queue_intersection:
      return to_two_graph_queue_intersection(v.queue, *v.hyperedges, *v.hypernodes, v.degrees, s,
                                             v.hyperedges->size(), part)
          .size();
  }
  return 0;
}

/// Fastest time for one algorithm across partitioning/relabeling configs.
double best_time(algo a, const std::vector<labeled_view>& views, std::size_t s) {
  double best = 1e300;
  for (const auto& v : views) {
    best = std::min(best, time_min_ms([&] { run_algo(a, v, s, nw::par::blocked{}); }));
    best = std::min(best,
                    time_min_ms([&] { run_algo(a, v, s, nw::par::cyclic{8 * nw::par::num_threads()}); }));
  }
  return best;
}

/// NWHY_BENCH_JSON mode: the machine-readable sweep bench_snapshot.sh
/// freezes into BENCH_slinegraph.json.  One record per dataset x algorithm
/// x s x thread-count: {"dataset", "algorithm", "s", "threads",
/// "median_ms", "pairs"}.  Thread counts come from NWHY_BENCH_THREADS; the
/// default pool is resized for each count and restored afterwards.
int run_json_mode(const char* path) {
  FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "[bench] cannot open %s for writing\n", path);
    return 1;
  }
  const unsigned restore = nw::par::num_threads();
  const std::pair<const char*, algo> named[] = {
      {"hashmap", algo::hashmap},
      {"intersection", algo::intersection},
      {"queue_hashmap", algo::queue_hashmap},
      {"queue_intersection", algo::queue_intersection},
  };
  std::fprintf(out, "[");
  bool first = true;
  for (const auto& d : suite()) {
    // Optional dataset filter: exact-name comma list (default: everything).
    if (!dataset_selected(d->name)) continue;
    labeled_view v = make_view(*d, nw::graph::degree_order::descending, false);
    for (std::size_t s : env_svalues()) {
      for (unsigned threads : env_threads()) {
        nw::par::thread_pool::set_default_concurrency(threads);
        auto emit = [&](const char* name, std::size_t pairs, double ms) {
          std::fprintf(out,
                       "%s\n  {\"dataset\": \"%s\", \"algorithm\": \"%s\", \"s\": %zu, "
                       "\"threads\": %u, \"median_ms\": %.4f, \"pairs\": %zu, "
                       "\"peak_rss_kb\": %ld}",
                       first ? "" : ",", d->name.c_str(), name, s, threads, ms, pairs,
                       peak_rss_kb());
          first = false;
        };
        for (auto [name, a] : named) {
          std::size_t pairs = 0;
          double      ms    = time_median_ms([&] { pairs = run_algo(a, v, s, nw::par::blocked{}); });
          emit(name, pairs, ms);
        }
        // The direct per-thread-buffers -> CSR pipeline (no edge_list
        // round-trip); pairs = undirected edge count of the symmetric CSR.
        std::size_t csr_pairs = 0;
        double      csr_ms    = time_median_ms([&] {
          auto csr  = to_two_graph_hashmap_csr(*v.hyperedges, *v.hypernodes, v.degrees, s);
          csr_pairs = csr.num_edges() / 2;
        });
        emit("hashmap_csr", csr_pairs, csr_ms);
      }
    }
  }
  std::fprintf(out, "\n]\n");
  std::fclose(out);
  nw::par::thread_pool::set_default_concurrency(restore);
  std::fprintf(stderr, "[bench] wrote slinegraph sweep to %s\n", path);
  return 0;
}

}  // namespace

int main() {
  if (const char* json = std::getenv("NWHY_BENCH_JSON"); json != nullptr && *json != '\0') {
    setenv("NWHY_BENCH_REPS", "3", /*overwrite=*/0);
    return run_json_mode(json);
  }
  // Construction costs dwarf run-to-run noise here; default to one rep so
  // the full harness stays in the minutes range on one core.
  setenv("NWHY_BENCH_REPS", "1", /*overwrite=*/0);
  bool full = env_size("NWHY_FIG9_FULL", 0) == 1;
  std::printf(
      "Figure 9 — s-line graph construction, runtime relative to Hashmap\n"
      "(best over partitioning %s; absolute ms in parentheses)\n",
      full ? "x {none, asc, desc} relabeling" : "x {none, desc} relabeling");
  std::printf("%-18s %4s %16s %18s %16s %16s %14s %10s\n", "dataset", "s", "Hashmap",
              "Intersection", "Alg1(queue-hm)", "Alg2(queue-2p)", "Alg1-adjoin", "|L_s(H)|");

  for (const auto& d : suite()) {
    std::vector<labeled_view> views;
    views.push_back(make_view(*d, nw::graph::degree_order::descending, false));
    views.push_back(make_view(*d, nw::graph::degree_order::descending, true));
    if (full) views.push_back(make_view(*d, nw::graph::degree_order::ascending, true));

    // The queue algorithm's versatility claim: the identical kernel also
    // runs on the adjoin representation (one shared index set), where the
    // non-queue algorithms' contiguous-[0, nE) assumption does not hold.
    std::vector<vertex_id_t> adjoin_queue(d->adjoin.nrealedges);
    for (std::size_t i = 0; i < adjoin_queue.size(); ++i) {
      adjoin_queue[i] = static_cast<vertex_id_t>(i);
    }
    auto adjoin_degrees = d->adjoin.graph.degrees();

    for (std::size_t s : env_svalues()) {
      std::size_t edges = run_algo(algo::hashmap, views[0], s, nw::par::blocked{});
      double hm  = best_time(algo::hashmap, views, s);
      double is  = best_time(algo::intersection, views, s);
      double q1  = best_time(algo::queue_hashmap, views, s);
      double q2  = best_time(algo::queue_intersection, views, s);
      double q1a = time_min_ms([&] {
        auto el = to_two_graph_queue_hashmap(adjoin_queue, d->adjoin.graph, d->adjoin.graph,
                                             adjoin_degrees, s, d->adjoin.nrealedges);
        (void)el;
      });
      std::printf(
          "%-18s %4zu %8.2fx(%5.0f) %8.2fx(%7.0f) %8.2fx(%5.0f) %8.2fx(%5.0f) %8.2fx(%5.0f) "
          "%10zu\n",
          d->name.c_str(), s, 1.0, hm, is / hm, is, q1 / hm, q1, q2 / hm, q2, q1a / hm, q1a,
          edges);
    }
  }
  return 0;
}
