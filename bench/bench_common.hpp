// bench/bench_common.hpp — shared scaffolding for the figure-reproduction
// harnesses: the Table-I dataset suite (cached per process), timing with
// min-of-N repetitions, and environment knobs.
//
//   NWHY_BENCH_SCALE   multiplies dataset sizes (default 1)
//   NWHY_BENCH_REPS    repetitions per measurement, min reported (default 3)
//   NWHY_BENCH_THREADS comma list of thread counts (default "1,2,4,8")
//   NWHY_BENCH_PROFILE path; when set, an nwobs JSON profile (counters,
//                      phase timers, env, threads) is written there at
//                      process exit, landing next to the timing output
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>
#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "nwhy.hpp"

namespace bench {

using namespace nw::hypergraph;

inline std::size_t env_size(const char* name, std::size_t fallback) {
  if (const char* v = std::getenv(name)) {
    long n = std::atol(v);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  return fallback;
}

inline std::vector<unsigned> env_threads() {
  std::vector<unsigned> out;
  const char*           v = std::getenv("NWHY_BENCH_THREADS");
  std::string           s = v ? v : "1,2,4,8";
  std::size_t           pos = 0;
  while (pos < s.size()) {
    std::size_t next = s.find(',', pos);
    if (next == std::string::npos) next = s.size();
    int n = std::atoi(s.substr(pos, next - pos).c_str());
    if (n > 0) out.push_back(static_cast<unsigned>(n));
    pos = next + 1;
  }
  if (out.empty()) out = {1, 2, 4, 8};
  return out;
}

/// One fully materialized dataset: every representation the harnesses need.
struct dataset {
  std::string              name;
  biedgelist<>             el;
  biadjacency<0>           hyperedges;
  biadjacency<1>           hypernodes;
  adjoin_graph             adjoin;
  std::vector<std::size_t> edge_degrees;
  std::vector<std::size_t> node_degrees;

  dataset(std::string n, biedgelist<> input) : name(std::move(n)) {
    input.sort_and_unique();
    el           = std::move(input);
    hyperedges   = biadjacency<0>(el);
    hypernodes   = biadjacency<1>(el);
    adjoin       = make_adjoin_graph(el);
    edge_degrees = hyperedges.degrees();
    node_degrees = hypernodes.degrees();
  }
};

/// Build (and cache) the Table-I suite at the configured scale.
inline const std::vector<std::unique_ptr<dataset>>& suite() {
  static std::vector<std::unique_ptr<dataset>> cache = [] {
    std::size_t scale = env_size("NWHY_BENCH_SCALE", 1);
    std::vector<std::unique_ptr<dataset>> out;
    for (const auto& spec : gen::dataset_suite()) {
      out.push_back(std::make_unique<dataset>(spec.name, spec.build(scale)));
    }
    return out;
  }();
  return cache;
}

/// Wall-clock min over NWHY_BENCH_REPS runs of `fn`, in milliseconds.
inline double time_min_ms(const std::function<void()>& fn) {
  std::size_t reps = env_size("NWHY_BENCH_REPS", 3);
  double      best = 1e300;
  for (std::size_t r = 0; r < reps; ++r) {
    nw::timer t;
    fn();
    best = std::min(best, t.elapsed_ms());
  }
  return best;
}

/// Wall-clock median over NWHY_BENCH_REPS runs of `fn`, in milliseconds —
/// the statistic bench_snapshot.sh records, since the median is robust to
/// both one-off stalls and one-off lucky cache states.
inline double time_median_ms(const std::function<void()>& fn) {
  std::size_t         reps = env_size("NWHY_BENCH_REPS", 3);
  std::vector<double> samples;
  samples.reserve(reps);
  for (std::size_t r = 0; r < reps; ++r) {
    nw::timer t;
    fn();
    samples.push_back(t.elapsed_ms());
  }
  std::sort(samples.begin(), samples.end());
  std::size_t mid = samples.size() / 2;
  if (samples.size() % 2 == 1) return samples[mid];
  return 0.5 * (samples[mid - 1] + samples[mid]);
}

/// Install the NWHY_BENCH_PROFILE export hook (idempotent).  When the env
/// var names a path and observability is runtime-enabled, the accumulated
/// counter/timer registry is serialized there at process exit, so profiles
/// land next to whatever timing output the harness printed.  Harnesses call
/// this from main(); calling it again is a no-op.
inline void install_profile_export() {
  static const bool installed = [] {
    const char* path = std::getenv("NWHY_BENCH_PROFILE");
    if (path == nullptr || *path == '\0' || !nw::obs::runtime_enabled()) return false;
    // Touch the registry singleton *before* registering the atexit hook:
    // static destructors and atexit callbacks run in reverse registration
    // order, so constructing it first guarantees it outlives the hook.
    (void)nw::obs::registry::get();
    static std::string target;  // outlives the atexit callback
    target = path;
    std::atexit([] {
      if (nw::obs::write_profile(target)) {
        std::fprintf(stderr, "[bench] wrote nwobs profile to %s\n", target.c_str());
      } else {
        std::fprintf(stderr, "[bench] failed to write nwobs profile to %s\n", target.c_str());
      }
    });
    return true;
  }();
  (void)installed;
}

namespace detail {
/// Auto-install at static-init time so every harness — including the
/// google-benchmark ones whose main() is BENCHMARK_MAIN() — honors
/// NWHY_BENCH_PROFILE without per-harness wiring.
inline const bool profile_export_auto = (install_profile_export(), true);
}  // namespace detail

/// Peak resident-set size of the calling process so far, in KiB, from
/// getrusage(RUSAGE_SELF).  Every NWHY_BENCH_JSON record carries this so a
/// reviewer can see the memory high-water mark next to the wall time.  On
/// Linux ru_maxrss is already KiB; macOS reports bytes.  Returns 0 where
/// getrusage is unavailable.
inline long peak_rss_kb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return ru.ru_maxrss / 1024;
#else
  return ru.ru_maxrss;
#endif
#else
  return 0;
#endif
}

/// Exact-name dataset filter for the NWHY_BENCH_JSON sweep modes: true when
/// NWHY_BENCH_DATASETS is unset/empty or contains `name` in its comma list.
inline bool dataset_selected(const std::string& name) {
  const char* v = std::getenv("NWHY_BENCH_DATASETS");
  if (v == nullptr || *v == '\0') return true;
  std::string s   = v;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t next = s.find(',', pos);
    if (next == std::string::npos) next = s.size();
    if (s.substr(pos, next - pos) == name) return true;
    pos = next + 1;
  }
  return false;
}

/// The highest-degree hyperedge: the standard BFS source (largest component
/// coverage, deterministic).
inline nw::vertex_id_t bfs_source(const dataset& d) {
  nw::vertex_id_t best = 0;
  for (std::size_t e = 1; e < d.edge_degrees.size(); ++e) {
    if (d.edge_degrees[e] > d.edge_degrees[best]) best = static_cast<nw::vertex_id_t>(e);
  }
  return best;
}

}  // namespace bench
