// bench/bench_ablation_relabel.cpp — ablation B (Sec. III-B.2/III-C.3):
// effect of relabel-by-degree on s-line graph construction, and the
// queue-based algorithms' indifference to the id layout.  Relabeling is the
// optimization the adjoin representation cannot use; Algorithms 1-2 accept
// permuted ids either way.
#include <benchmark/benchmark.h>

#include "nwgraph/relabel.hpp"
#include "nwhy.hpp"

namespace {

using namespace nw::hypergraph;
using nw::vertex_id_t;

struct fixture {
  biadjacency<0>           hyperedges;
  biadjacency<1>           hypernodes;
  std::vector<std::size_t> degrees;
  std::vector<vertex_id_t> queue;
};

fixture make_fixture(nw::graph::degree_order order, bool relabel) {
  static biedgelist<> base = [] {
    auto el = gen::powerlaw_hypergraph(20000, 10000, 500, 1.6, 1.0, 0xAB1B);
    el.sort_and_unique();
    return el;
  }();
  biedgelist<> el = base;
  if (relabel) {
    biadjacency<0> he(base);
    auto           perm = nw::graph::degree_permutation(he.degrees(), order);
    biedgelist<>   rel(base.num_vertices(0), base.num_vertices(1));
    for (std::size_t i = 0; i < base.size(); ++i) {
      auto [e, v] = base[i];
      rel.push_back(perm[e], v);
    }
    rel.sort_and_unique();
    el = std::move(rel);
  }
  fixture f{biadjacency<0>(el), biadjacency<1>(el), {}, {}};
  f.degrees = f.hyperedges.degrees();
  f.queue.resize(f.hyperedges.size());
  for (std::size_t i = 0; i < f.queue.size(); ++i) f.queue[i] = static_cast<vertex_id_t>(i);
  return f;
}

const fixture& original() {
  static fixture f = make_fixture(nw::graph::degree_order::descending, false);
  return f;
}
const fixture& descending() {
  static fixture f = make_fixture(nw::graph::degree_order::descending, true);
  return f;
}
const fixture& ascending() {
  static fixture f = make_fixture(nw::graph::degree_order::ascending, true);
  return f;
}

void bench_hashmap(benchmark::State& state, const fixture& f) {
  std::size_t s = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto el = to_two_graph_hashmap(f.hyperedges, f.hypernodes, f.degrees, s);
    benchmark::DoNotOptimize(el.size());
  }
}

void bench_queue_hashmap(benchmark::State& state, const fixture& f) {
  std::size_t s = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto el = to_two_graph_queue_hashmap(f.queue, f.hyperedges, f.hypernodes, f.degrees, s,
                                         f.hyperedges.size());
    benchmark::DoNotOptimize(el.size());
  }
}

void BM_Hashmap_Original(benchmark::State& s) { bench_hashmap(s, original()); }
void BM_Hashmap_RelabelDesc(benchmark::State& s) { bench_hashmap(s, descending()); }
void BM_Hashmap_RelabelAsc(benchmark::State& s) { bench_hashmap(s, ascending()); }
void BM_QueueHashmap_Original(benchmark::State& s) { bench_queue_hashmap(s, original()); }
void BM_QueueHashmap_RelabelDesc(benchmark::State& s) { bench_queue_hashmap(s, descending()); }

}  // namespace

BENCHMARK(BM_Hashmap_Original)->Arg(2)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Hashmap_RelabelDesc)->Arg(2)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Hashmap_RelabelAsc)->Arg(2)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_QueueHashmap_Original)->Arg(2)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_QueueHashmap_RelabelDesc)->Arg(2)->Arg(8)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
