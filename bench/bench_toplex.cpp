// bench/bench_toplex.cpp — ablation D: Algorithm 3 (parallel toplex) vs the
// serial candidate-set formulation, on nesting-heavy and random inputs.
#include <benchmark/benchmark.h>

#include "nwhy.hpp"

namespace {

using namespace nw::hypergraph;

struct fixture {
  biadjacency<0> hyperedges;
  biadjacency<1> hypernodes;
};

fixture make(biedgelist<> el) {
  el.sort_and_unique();
  return {biadjacency<0>(el), biadjacency<1>(el)};
}

const fixture& nested() {
  static fixture f = make(gen::nested_hypergraph(150, 40));
  return f;
}

const fixture& random_hg() {
  static fixture f = make(gen::uniform_random_hypergraph(4000, 800, 4, 0xAB1D));
  return f;
}

void BM_ToplexParallel_Nested(benchmark::State& state) {
  for (auto _ : state) {
    auto t = toplexes(nested().hyperedges, nested().hypernodes);
    benchmark::DoNotOptimize(t.size());
  }
}

void BM_ToplexSerial_Nested(benchmark::State& state) {
  for (auto _ : state) {
    auto t = toplexes_serial(nested().hyperedges);
    benchmark::DoNotOptimize(t.size());
  }
}

void BM_ToplexParallel_Random(benchmark::State& state) {
  for (auto _ : state) {
    auto t = toplexes(random_hg().hyperedges, random_hg().hypernodes);
    benchmark::DoNotOptimize(t.size());
  }
}

void BM_ToplexSerial_Random(benchmark::State& state) {
  for (auto _ : state) {
    auto t = toplexes_serial(random_hg().hyperedges);
    benchmark::DoNotOptimize(t.size());
  }
}

}  // namespace

BENCHMARK(BM_ToplexParallel_Nested)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ToplexSerial_Nested)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ToplexParallel_Random)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ToplexSerial_Random)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
