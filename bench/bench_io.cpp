// bench/bench_io.cpp — the I/O subsystem under measurement: parallel text
// ingest vs the two snapshot load paths.
//
// The harness synthesizes one Rand1-style hypergraph with >= 1M incidences
// (NWHY_BENCH_SCALE multiplies it), serializes it once into every on-disk
// format, then times the loads:
//
//   parse-mm      parallel MatrixMarket ingest (parse_matrix_market), swept
//                 over NWHY_BENCH_THREADS — the scaling series
//   read-bin      NWHYBIN1 legacy binary (serial stream read)
//   read-nwcsr    NWHYCSR2 streamed read (pipe-safe path, verifies all
//                 section checksums)
//   mmap-nwcsr    NWHYCSR2 zero-copy mmap load; the timed region includes a
//                 first-touch sweep over every mapped section so page-fault
//                 cost is charged to the load, not to the first algorithm
//
// The footer prints the headline acceptance ratio: mmap load vs 1-thread
// text parse (the paper-motivated "don't re-parse what you already
// canonicalized" argument).
//
//   NWHY_BENCH_JSON  path; when set the harness skips the table and writes
//                    machine-readable records for scripts/bench_snapshot.sh:
//                    schema nwhy-bench-io-v1, one record per operation x
//                    thread-count: {"dataset", "operation", "threads",
//                    "median_ms", "incidences", "bytes"}
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "bench_common.hpp"

using namespace bench;

namespace {

struct corpus {
  std::string  name;
  biedgelist<> el;
  std::string  mtx_path, bin_path, nwcsr_path;
  std::size_t  mtx_bytes = 0, bin_bytes = 0, nwcsr_bytes = 0;
};

/// Build the benchmark hypergraph (>= 1M incidences at scale 1) and
/// serialize it into all three on-disk formats under a scratch directory.
corpus make_corpus(const std::filesystem::path& dir) {
  std::size_t scale = env_size("NWHY_BENCH_SCALE", 1);
  corpus      c;
  c.name = "Rand-io";
  c.el   = gen::uniform_random_hypergraph(/*num_edges=*/120000 * scale,
                                          /*num_nodes=*/120000 * scale,
                                          /*edge_size=*/10, /*seed=*/0x10C0FFEE);
  c.el.sort_and_unique();

  c.mtx_path   = (dir / "bench_io.mtx").string();
  c.bin_path   = (dir / "bench_io.bin").string();
  c.nwcsr_path = (dir / "bench_io.nwcsr").string();

  write_matrix_market(c.mtx_path, c.el);
  write_binary(c.bin_path, c.el);
  biadjacency<0> edges(c.el);
  biadjacency<1> nodes(c.el);
  write_csr_snapshot(c.nwcsr_path, edges, nodes);

  c.mtx_bytes   = std::filesystem::file_size(c.mtx_path);
  c.bin_bytes   = std::filesystem::file_size(c.bin_path);
  c.nwcsr_bytes = std::filesystem::file_size(c.nwcsr_path);
  return c;
}

/// First-touch every mapped section so the mmap timing charges page faults
/// to the load.  Returns a checksum-ish value to defeat dead-code
/// elimination.
std::uint64_t touch_all(const csr_snapshot& snap) {
  std::uint64_t acc = 0;
  auto          sweep = [&](const auto& csr) {
    for (auto v : csr.indices()) acc += v;
    for (auto v : csr.targets()) acc += v;
  };
  sweep(snap.edges.csr());
  sweep(snap.nodes.csr());
  if (snap.adjoin) sweep(snap.adjoin->graph);
  return acc;
}

struct sample {
  std::string operation;
  unsigned    threads;
  double      median_ms;
  std::size_t incidences;
  std::size_t bytes;
};

/// Run the full measurement matrix once; both output modes render it.
std::vector<sample> measure(const corpus& c) {
  std::vector<sample> out;
  const unsigned      restore = nw::par::num_threads();

  // Parallel MatrixMarket ingest, swept over the thread counts.  The slurp
  // is inside the timed region: "load this text file" is the user-visible
  // operation being compared against the snapshot loads.
  for (unsigned t : env_threads()) {
    nw::par::thread_pool::set_default_concurrency(t);
    std::size_t m  = 0;
    double      ms = time_median_ms([&] {
      auto el = graph_reader(c.mtx_path);
      m       = el.size();
    });
    out.push_back({"parse-mm", t, ms, m, c.mtx_bytes});
  }
  nw::par::thread_pool::set_default_concurrency(restore);

  {  // NWHYBIN1 legacy binary (serial).
    std::size_t m  = 0;
    double      ms = time_median_ms([&] {
      auto el = read_binary(c.bin_path);
      m       = el.size();
    });
    out.push_back({"read-bin", 1, ms, m, c.bin_bytes});
  }
  {  // NWHYCSR2 streamed read (always verifies checksums).
    std::size_t m  = 0;
    double      ms = time_median_ms([&] {
      std::ifstream in(c.nwcsr_path, std::ios::binary);
      auto          snap = read_csr_snapshot(in, c.nwcsr_path);
      m                  = snap.m;
    });
    out.push_back({"read-nwcsr", 1, ms, m, c.nwcsr_bytes});
  }
  {  // NWHYCSR2 zero-copy mmap load + first-touch sweep.
    std::size_t            m   = 0;
    volatile std::uint64_t acc = 0;
    double                 ms  = time_median_ms([&] {
      auto snap = load_csr_snapshot(c.nwcsr_path);
      acc       = acc + touch_all(snap);
      m         = snap.m;
    });
    out.push_back({"mmap-nwcsr", 1, ms, m, c.nwcsr_bytes});
  }
  return out;
}

double find_ms(const std::vector<sample>& rows, const std::string& op, unsigned threads) {
  for (const auto& r : rows) {
    if (r.operation == op && r.threads == threads) return r.median_ms;
  }
  return 0;
}

int run_json_mode(const char* path, const corpus& c, const std::vector<sample>& rows) {
  FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "[bench] cannot open %s for writing\n", path);
    return 1;
  }
  std::fprintf(out, "[");
  bool first = true;
  for (const auto& r : rows) {
    std::fprintf(out,
                 "%s\n  {\"dataset\": \"%s\", \"operation\": \"%s\", \"threads\": %u, "
                 "\"median_ms\": %.4f, \"incidences\": %zu, \"bytes\": %zu}",
                 first ? "" : ",", c.name.c_str(), r.operation.c_str(), r.threads, r.median_ms,
                 r.incidences, r.bytes);
    first = false;
  }
  std::fprintf(out, "\n]\n");
  std::fclose(out);
  std::fprintf(stderr, "[bench] wrote I/O sweep to %s\n", path);
  return 0;
}

}  // namespace

int main() {
  install_profile_export();

  std::error_code       ec;
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() / ("nwhy_bench_io." + std::to_string(::getpid()));
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "[bench] cannot create scratch dir %s\n", dir.string().c_str());
    return 1;
  }

  corpus c    = make_corpus(dir);
  auto   rows = measure(c);

  int rc = 0;
  if (const char* json = std::getenv("NWHY_BENCH_JSON"); json != nullptr && *json != '\0') {
    rc = run_json_mode(json, c, rows);
  } else {
    std::printf("I/O subsystem — load times (median of %zu reps)\n",
                env_size("NWHY_BENCH_REPS", 3));
    std::printf("dataset %s: %zu incidences; %.1f MB text, %.1f MB bin, %.1f MB nwcsr\n",
                c.name.c_str(), c.el.size(), c.mtx_bytes / 1e6, c.bin_bytes / 1e6,
                c.nwcsr_bytes / 1e6);
    std::printf("%-14s %8s %12s %14s\n", "operation", "threads", "median ms", "MB/s");
    for (const auto& r : rows) {
      double mbps = r.median_ms > 0 ? (r.bytes / 1e6) / (r.median_ms / 1e3) : 0;
      std::printf("%-14s %8u %12.2f %14.1f\n", r.operation.c_str(), r.threads, r.median_ms, mbps);
    }
    double parse1 = find_ms(rows, "parse-mm", env_threads().front());
    double mm     = find_ms(rows, "mmap-nwcsr", 1);
    if (parse1 > 0 && mm > 0) {
      std::printf("  -> mmap snapshot load is %.1fx faster than %u-thread text parse\n",
                  parse1 / mm, env_threads().front());
    }
  }

  std::filesystem::remove_all(dir, ec);
  return rc;
}
