// bench/bench_io.cpp — the I/O subsystem under measurement: parallel text
// ingest vs the two snapshot load paths.
//
// The harness synthesizes one Rand1-style hypergraph with >= 1M incidences
// (NWHY_BENCH_SCALE multiplies it), serializes it once into every on-disk
// format, then times the loads:
//
//   parse-mm      parallel MatrixMarket ingest (parse_matrix_market), swept
//                 over NWHY_BENCH_THREADS — the scaling series
//   read-bin      NWHYBIN1 legacy binary (serial stream read)
//   read-nwcsr    NWHYCSR2 streamed read (pipe-safe path, verifies all
//                 section checksums)
//   mmap-nwcsr    NWHYCSR2 zero-copy mmap load; the timed region includes a
//                 first-touch sweep over every mapped section so page-fault
//                 cost is charged to the load, not to the first algorithm
//   read-nwcsrz   streamed read of the compressed snapshot (SVB target
//                 sections), decoding to owned CSRs inside the timed region
//   mmap-nwcsrz   mmap load of the compressed snapshot + full materialize —
//                 the "cold start from a small file" number
//   decode-svb    pure block-decode throughput, swept over
//                 NWHY_BENCH_THREADS: the snapshot is mapped in stream mode
//                 outside the timer and both compressed_adjacency views are
//                 materialized inside it; `bytes` is the LOGICAL decoded
//                 output (2 x m x 4), so MB/s is decode bandwidth
//   svb-sections  zero-time bookkeeping record: `bytes` is the on-disk size
//                 of the compressed target sections (kinds 7-10), so
//                 8*incidences/bytes is the target-section compression ratio
//   read-nwcsr-sharded  streamed read of the sharded snapshot (kinds 11/12),
//                 reassembling both global CSRs from the shard slices
//   mmap-nwcsr-sharded  mmap load of the sharded snapshot + reassembly —
//                 what a whole-graph consumer pays for the sharded layout
//   bfs-sharded   shard-at-a-time BFS (hyper_bfs_sharded) over the sharded
//                 snapshot, in-process, for a like-for-like wall time
//   bfs-sharded-ooc  the >RAM gate: a 4x-scale hypergraph is written sharded,
//                 then a fresh fork+exec'd child opens it as a
//                 sharded_snapshot and runs BFS; `bytes` is the dataset's
//                 resident size (raw CSR footprint an in-memory engine would
//                 hold) and `peak_rss_kb` is the child's ru_maxrss via
//                 wait4 — the acceptance signal is peak_rss_kb * 1024 well
//                 below bytes
//
// The footer prints the headline acceptance ratios: mmap load vs 1-thread
// text parse (the paper-motivated "don't re-parse what you already
// canonicalized" argument), the compressed-vs-raw bytes on disk, the peak
// decode bandwidth in GB/s, and the out-of-core BFS peak RSS vs the dataset
// resident size.
//
//   NWHY_BENCH_JSON  path; when set the harness skips the table and writes
//                    machine-readable records for scripts/bench_snapshot.sh:
//                    schema nwhy-bench-io-v1, one record per operation x
//                    thread-count: {"dataset", "operation", "threads",
//                    "median_ms", "incidences", "bytes", "peak_rss_kb"}
#include <unistd.h>
#if defined(__unix__)
#include <sys/resource.h>
#include <sys/wait.h>
#endif

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "bench_common.hpp"

using namespace bench;

namespace {

struct corpus {
  std::string  name;
  biedgelist<> el;
  std::string  mtx_path, bin_path, nwcsr_path, nwcsrz_path, nwcsrs_path;
  std::size_t  mtx_bytes = 0, bin_bytes = 0, nwcsr_bytes = 0, nwcsrz_bytes = 0, nwcsrs_bytes = 0;
  std::size_t  svb_section_bytes = 0;  // on-disk bytes of section kinds 7-10
};

/// Sum the on-disk bytes of the compressed target sections (kinds 7-10)
/// by parsing just the snapshot's header + section table.
std::size_t svb_section_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  in.seekg(0, std::ios::end);
  const std::uint64_t file_size = static_cast<std::uint64_t>(in.tellg());
  in.seekg(0);
  std::vector<unsigned char> head(static_cast<std::size_t>(std::min<std::uint64_t>(
      file_size, csr_detail::header_bytes +
                     csr_detail::max_section_count * csr_detail::table_entry_bytes)));
  in.read(reinterpret_cast<char*>(head.data()), static_cast<std::streamsize>(head.size()));
  auto        h   = csr_detail::parse_header(head.data(), file_size, path);
  std::size_t acc = 0;
  for (const auto& s : h.sections) {
    if (s.kind >= csr_sec_e2n_targets_svb && s.kind <= csr_sec_e2n_dict_indices) {
      acc += static_cast<std::size_t>(s.length);
    }
  }
  return acc;
}

/// Build the benchmark hypergraph (>= 1M incidences at scale 1) and
/// serialize it into all the on-disk formats under a scratch directory.
corpus make_corpus(const std::filesystem::path& dir) {
  std::size_t scale = env_size("NWHY_BENCH_SCALE", 1);
  corpus      c;
  c.name = "Rand-io";
  c.el   = gen::uniform_random_hypergraph(/*num_edges=*/120000 * scale,
                                          /*num_nodes=*/120000 * scale,
                                          /*edge_size=*/10, /*seed=*/0x10C0FFEE);
  c.el.sort_and_unique();

  c.mtx_path    = (dir / "bench_io.mtx").string();
  c.bin_path    = (dir / "bench_io.bin").string();
  c.nwcsr_path  = (dir / "bench_io.nwcsr").string();
  c.nwcsrz_path = (dir / "bench_io.z.nwcsr").string();
  c.nwcsrs_path = (dir / "bench_io.s.nwcsr").string();

  write_matrix_market(c.mtx_path, c.el);
  write_binary(c.bin_path, c.el);
  biadjacency<0> edges(c.el);
  biadjacency<1> nodes(c.el);
  write_csr_snapshot(c.nwcsr_path, edges, nodes);
  write_csr_snapshot(c.nwcsrz_path, edges, nodes, csr_compress_options{});
  {  // Hyperedge-range sharded layout (kinds 11/12), default byte budget.
    csr_shard_options so{};
    csr_write_options wopt;
    wopt.shard = &so;
    write_csr_snapshot(c.nwcsrs_path, edges, nodes, wopt);
  }

  c.mtx_bytes    = std::filesystem::file_size(c.mtx_path);
  c.bin_bytes    = std::filesystem::file_size(c.bin_path);
  c.nwcsr_bytes  = std::filesystem::file_size(c.nwcsr_path);
  c.nwcsrz_bytes = std::filesystem::file_size(c.nwcsrz_path);
  c.nwcsrs_bytes = std::filesystem::file_size(c.nwcsrs_path);
  c.svb_section_bytes = svb_section_bytes(c.nwcsrz_path);
  return c;
}

/// First-touch every mapped section so the mmap timing charges page faults
/// to the load.  Returns a checksum-ish value to defeat dead-code
/// elimination.
std::uint64_t touch_all(const csr_snapshot& snap) {
  std::uint64_t acc = 0;
  auto          sweep = [&](const auto& csr) {
    for (auto v : csr.indices()) acc += v;
    for (auto v : csr.targets()) acc += v;
  };
  sweep(snap.edges.csr());
  sweep(snap.nodes.csr());
  if (snap.adjoin) sweep(snap.adjoin->graph);
  return acc;
}

struct sample {
  std::string operation;
  unsigned    threads;
  double      median_ms;
  std::size_t incidences;
  std::size_t bytes;
  long        rss_kb = -1;   ///< filled after the timed region; -1 = unknown
  std::string dataset = "";  ///< empty = the shared corpus name
};

/// Run the full measurement matrix once; both output modes render it.
std::vector<sample> measure(const corpus& c) {
  std::vector<sample> out;
  const unsigned      restore = nw::par::num_threads();

  // Parallel MatrixMarket ingest, swept over the thread counts.  The slurp
  // is inside the timed region: "load this text file" is the user-visible
  // operation being compared against the snapshot loads.
  for (unsigned t : env_threads()) {
    nw::par::thread_pool::set_default_concurrency(t);
    std::size_t m  = 0;
    double      ms = time_median_ms([&] {
      auto el = graph_reader(c.mtx_path);
      m       = el.size();
    });
    out.push_back({"parse-mm", t, ms, m, c.mtx_bytes});
  }
  nw::par::thread_pool::set_default_concurrency(restore);

  {  // NWHYBIN1 legacy binary (serial).
    std::size_t m  = 0;
    double      ms = time_median_ms([&] {
      auto el = read_binary(c.bin_path);
      m       = el.size();
    });
    out.push_back({"read-bin", 1, ms, m, c.bin_bytes});
  }
  {  // NWHYCSR2 streamed read (always verifies checksums).
    std::size_t m  = 0;
    double      ms = time_median_ms([&] {
      std::ifstream in(c.nwcsr_path, std::ios::binary);
      auto          snap = read_csr_snapshot(in, c.nwcsr_path);
      m                  = snap.m;
    });
    out.push_back({"read-nwcsr", 1, ms, m, c.nwcsr_bytes});
  }
  {  // NWHYCSR2 zero-copy mmap load + first-touch sweep.
    std::size_t            m   = 0;
    volatile std::uint64_t acc = 0;
    double                 ms  = time_median_ms([&] {
      auto snap = load_csr_snapshot(c.nwcsr_path);
      acc       = acc + touch_all(snap);
      m         = snap.m;
    });
    out.push_back({"mmap-nwcsr", 1, ms, m, c.nwcsr_bytes});
  }
  {  // Compressed snapshot, streamed read + decode to owned CSRs.
    std::size_t m  = 0;
    double      ms = time_median_ms([&] {
      std::ifstream in(c.nwcsrz_path, std::ios::binary);
      auto          snap = read_csr_snapshot(in, c.nwcsrz_path);
      m                  = snap.m;
    });
    out.push_back({"read-nwcsrz", 1, ms, m, c.nwcsrz_bytes});
  }
  {  // Compressed snapshot, mmap + full materialize (cold-start path).
    std::size_t            m   = 0;
    volatile std::uint64_t acc = 0;
    double                 ms  = time_median_ms([&] {
      auto snap = load_csr_snapshot(c.nwcsrz_path);
      acc       = acc + touch_all(snap);
      m         = snap.m;
    });
    out.push_back({"mmap-nwcsrz", 1, ms, m, c.nwcsrz_bytes});
  }
  {  // Pure SVB block-decode bandwidth, swept over the thread counts.  The
     // snapshot is mapped in stream mode outside the timer; the timed
     // region decodes every block of both compressed views.  `bytes` is
     // the logical decoded output, so MB/s below is decode bandwidth.
    auto snap = load_csr_snapshot(c.nwcsrz_path, /*verify_checksums=*/false,
                                  snapshot_decode::stream);
    const std::size_t logical = 2 * snap.m * sizeof(nw::vertex_id_t);
    for (unsigned t : env_threads()) {
      nw::par::thread_pool::set_default_concurrency(t);
      volatile std::size_t acc = 0;
      double               ms  = time_median_ms([&] {
        std::size_t n = 0;
        if (snap.edges_view) n += snap.edges_view->materialize().num_edges();
        if (snap.nodes_view) n += snap.nodes_view->materialize().num_edges();
        acc = acc + n;
      });
      out.push_back({"decode-svb", t, ms, snap.m, logical});
    }
    nw::par::thread_pool::set_default_concurrency(restore);
  }
  {  // Sharded snapshot, streamed read: reassembles both global CSRs.
    std::size_t m  = 0;
    double      ms = time_median_ms([&] {
      std::ifstream in(c.nwcsrs_path, std::ios::binary);
      auto          snap = read_csr_snapshot(in, c.nwcsrs_path);
      m                  = snap.m;
    });
    out.push_back({"read-nwcsr-sharded", 1, ms, m, c.nwcsrs_bytes});
  }
  {  // Sharded snapshot, mmap load + reassembly + first-touch sweep.
    std::size_t            m   = 0;
    volatile std::uint64_t acc = 0;
    double                 ms  = time_median_ms([&] {
      auto snap = load_csr_snapshot(c.nwcsrs_path);
      acc       = acc + touch_all(snap);
      m         = snap.m;
    });
    out.push_back({"mmap-nwcsr-sharded", 1, ms, m, c.nwcsrs_bytes});
  }
  {  // Shard-at-a-time BFS over the sharded layout, in-process.
    sharded_snapshot       snap(c.nwcsrs_path);
    volatile std::uint64_t acc = 0;
    double                 ms  = time_median_ms([&] {
      auto r = hyper_bfs_sharded(snap, 0);
      acc    = acc + r.dist_edge.size();
    });
    out.push_back({"bfs-sharded", 1, ms, snap.num_incidences(), c.nwcsrs_bytes});
  }
  // Bookkeeping record: on-disk bytes of the compressed target sections,
  // so consumers can compute the target-section ratio (8*m / bytes).
  out.push_back({"svb-sections", 1, 0.0, c.el.size(), c.svb_section_bytes});
  // Every record carries the process RSS high-water mark as of its own
  // completion (ru_maxrss is monotone, so this is "peak so far").
  for (auto& r : out) {
    if (r.rss_kb < 0) r.rss_kb = peak_rss_kb();
  }
  return out;
}

/// The synthetic >RAM gate (ROADMAP item 2's acceptance signal).  A
/// NWHY_BENCH_OOC_FACTOR-times larger hypergraph (default 4x the corpus) is
/// written as a sharded snapshot, then a *fresh* fork+exec'd child — exec
/// resets the address space, so the measurement excludes the parent's
/// resident corpus — opens it as a sharded_snapshot and runs the
/// shard-at-a-time BFS.  `bytes` is the resident footprint an in-memory
/// engine would hold (both index arrays + both target streams) and `rss_kb`
/// is the child's ru_maxrss reported by wait4; the gate passes when
/// rss_kb * 1024 is well below bytes.
std::vector<sample> ooc_gate(const std::filesystem::path& dir, const char* exe) {
  std::vector<sample> out;
#if defined(__linux__)
  const std::string path = (dir / "bench_io.ooc.nwcsr").string();

  // Prefer /proc/self/exe over argv[0]: it stays valid whatever the cwd.
  char    self[4096];
  ssize_t n = ::readlink("/proc/self/exe", self, sizeof(self) - 1);
  if (n > 0) {
    self[n] = '\0';
    exe     = self;
  }
  auto spawn = [&](const char* mode, struct rusage* ru) {
    pid_t pid = ::fork();
    if (pid == 0) {
      ::execl(exe, exe, mode, path.c_str(), "0", static_cast<char*>(nullptr));
      ::_exit(127);
    }
    int status = -1;
    if (pid > 0) ::wait4(pid, &status, 0, ru);
    return WIFEXITED(status) && WEXITSTATUS(status) == 0;
  };

  // The gate dataset is also built and written by an exec'd child, so the
  // parent that later forks the *measured* child never holds it resident:
  // ru_maxrss survives execve, so a fork from a fat parent would inherit
  // the parent's high-water mark and drown the signal.
  struct rusage wru{};
  if (!spawn("--ooc-write", &wru)) {
    std::fprintf(stderr, "[bench] out-of-core gate writer failed; skipping the gate\n");
    return out;
  }
  std::uint64_t n0 = 0, n1 = 0, m = 0;
  {  // Dataset dimensions come from the written header.
    std::ifstream in(path, std::ios::binary);
    in.seekg(0, std::ios::end);
    const auto file_size = static_cast<std::uint64_t>(in.tellg());
    in.seekg(0);
    std::vector<unsigned char> head(static_cast<std::size_t>(std::min<std::uint64_t>(
        file_size, csr_detail::header_bytes +
                       csr_detail::max_section_count * csr_detail::table_entry_bytes)));
    in.read(reinterpret_cast<char*>(head.data()), static_cast<std::streamsize>(head.size()));
    auto h = csr_detail::parse_header(head.data(), file_size, path);
    n0     = h.n0;
    n1     = h.n1;
    m      = h.m;
  }
  // Resident footprint of the in-memory representation this layout avoids.
  const std::size_t resident_bytes = static_cast<std::size_t>(
      (n0 + 1 + n1 + 1) * sizeof(nw::offset_t) + 2 * m * sizeof(nw::vertex_id_t));

  nw::timer     t;
  struct rusage ru{};
  if (spawn("--ooc-child", &ru)) {
    out.push_back({"bfs-sharded-ooc", 1, t.elapsed_ms(), static_cast<std::size_t>(m),
                   resident_bytes, static_cast<long>(ru.ru_maxrss), "Rand-io-ooc"});
  } else {
    std::fprintf(stderr, "[bench] out-of-core gate child failed\n");
  }
  std::error_code ec;
  std::filesystem::remove(path, ec);
#else
  (void)dir;
  (void)exe;
#endif
  return out;
}

/// Writer half of the gate (exec'd): synthesize the NWHY_BENCH_OOC_FACTOR-
/// times-larger hypergraph and serialize it sharded.
int run_ooc_write(const char* path) {
  const std::size_t scale  = env_size("NWHY_BENCH_SCALE", 1);
  const std::size_t factor = env_size("NWHY_BENCH_OOC_FACTOR", 4);
  auto el = gen::uniform_random_hypergraph(/*num_edges=*/120000 * scale * factor,
                                           /*num_nodes=*/120000 * scale * factor,
                                           /*edge_size=*/10, /*seed=*/0x00CC0FFE);
  el.sort_and_unique();
  biadjacency<0>    edges(el);
  biadjacency<1>    nodes(el);
  csr_shard_options so{};
  csr_write_options wopt;
  wopt.shard = &so;
  write_csr_snapshot(path, edges, nodes, wopt);
  return 0;
}

/// Measured half of the gate (exec'd): open the sharded snapshot, traverse,
/// exit — the child's ru_maxrss is the number the gate records.
int run_ooc_child(const char* path, nw::vertex_id_t source) {
  sharded_snapshot snap(path);
  auto             r = hyper_bfs_sharded(snap, source);
  return r.dist_edge.empty() ? 1 : 0;
}

double find_ms(const std::vector<sample>& rows, const std::string& op, unsigned threads) {
  for (const auto& r : rows) {
    if (r.operation == op && r.threads == threads) return r.median_ms;
  }
  return 0;
}

int run_json_mode(const char* path, const corpus& c, const std::vector<sample>& rows) {
  FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "[bench] cannot open %s for writing\n", path);
    return 1;
  }
  std::fprintf(out, "[");
  bool first = true;
  for (const auto& r : rows) {
    std::fprintf(out,
                 "%s\n  {\"dataset\": \"%s\", \"operation\": \"%s\", \"threads\": %u, "
                 "\"median_ms\": %.4f, \"incidences\": %zu, \"bytes\": %zu, "
                 "\"peak_rss_kb\": %ld}",
                 first ? "" : ",", r.dataset.empty() ? c.name.c_str() : r.dataset.c_str(),
                 r.operation.c_str(), r.threads, r.median_ms, r.incidences, r.bytes, r.rss_kb);
    first = false;
  }
  std::fprintf(out, "\n]\n");
  std::fclose(out);
  std::fprintf(stderr, "[bench] wrote I/O sweep to %s\n", path);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Gate-child modes: exec'd by ooc_gate() so the RSS measurement starts
  // from a clean address space.  Not a user-facing interface.
  if (argc == 4 && std::string(argv[1]) == "--ooc-child") {
    return run_ooc_child(argv[2], static_cast<nw::vertex_id_t>(std::atol(argv[3])));
  }
  if (argc == 4 && std::string(argv[1]) == "--ooc-write") {
    return run_ooc_write(argv[2]);
  }

  install_profile_export();

  std::error_code       ec;
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() / ("nwhy_bench_io." + std::to_string(::getpid()));
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "[bench] cannot create scratch dir %s\n", dir.string().c_str());
    return 1;
  }

  // The gate runs first, while this process is still slim: a fork from a
  // parent already holding the corpus would inherit its ru_maxrss.
  auto   gate = ooc_gate(dir, argv[0]);
  corpus c    = make_corpus(dir);
  auto   rows = measure(c);
  for (auto& g : gate) rows.push_back(std::move(g));

  int rc = 0;
  if (const char* json = std::getenv("NWHY_BENCH_JSON"); json != nullptr && *json != '\0') {
    rc = run_json_mode(json, c, rows);
  } else {
    std::printf("I/O subsystem — load times (median of %zu reps)\n",
                env_size("NWHY_BENCH_REPS", 3));
    std::printf(
        "dataset %s: %zu incidences; %.1f MB text, %.1f MB bin, %.1f MB nwcsr, "
        "%.1f MB nwcsrz, %.1f MB sharded\n",
        c.name.c_str(), c.el.size(), c.mtx_bytes / 1e6, c.bin_bytes / 1e6, c.nwcsr_bytes / 1e6,
        c.nwcsrz_bytes / 1e6, c.nwcsrs_bytes / 1e6);
    std::printf("%-14s %8s %12s %14s\n", "operation", "threads", "median ms", "MB/s");
    for (const auto& r : rows) {
      if (r.operation == "svb-sections") continue;  // zero-time bookkeeping row
      double mbps = r.median_ms > 0 ? (r.bytes / 1e6) / (r.median_ms / 1e3) : 0;
      std::printf("%-14s %8u %12.2f %14.1f\n", r.operation.c_str(), r.threads, r.median_ms, mbps);
    }
    double parse1 = find_ms(rows, "parse-mm", env_threads().front());
    double mm     = find_ms(rows, "mmap-nwcsr", 1);
    if (parse1 > 0 && mm > 0) {
      std::printf("  -> mmap snapshot load is %.1fx faster than %u-thread text parse\n",
                  parse1 / mm, env_threads().front());
    }
    if (c.svb_section_bytes > 0) {
      std::printf("  -> compressed snapshot: %.1f MB vs %.1f MB raw on disk (%.2fx whole-file, "
                  "%.2fx on target sections)\n",
                  c.nwcsrz_bytes / 1e6, c.nwcsr_bytes / 1e6,
                  double(c.nwcsr_bytes) / double(c.nwcsrz_bytes),
                  double(2 * c.el.size() * sizeof(nw::vertex_id_t)) /
                      double(c.svb_section_bytes));
    }
    double decode_best = 0;
    for (const auto& r : rows) {
      if (r.operation == "decode-svb" && r.median_ms > 0) {
        decode_best = std::max(decode_best, (r.bytes / 1e9) / (r.median_ms / 1e3));
      }
    }
    if (decode_best > 0) {
      std::printf("  -> peak SVB decode bandwidth: %.2f GB/s of decoded targets\n", decode_best);
    }
    for (const auto& r : rows) {
      if (r.operation == "bfs-sharded-ooc") {
        std::printf("  -> out-of-core BFS peak RSS %.1f MB vs %.1f MB resident dataset "
                    "(%.2fx headroom)\n",
                    r.rss_kb / 1e3, r.bytes / 1e6,
                    r.rss_kb > 0 ? double(r.bytes) / (double(r.rss_kb) * 1024.0) : 0.0);
      }
    }
  }

  std::filesystem::remove_all(dir, ec);
  return rc;
}
