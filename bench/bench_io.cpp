// bench/bench_io.cpp — the I/O subsystem under measurement: parallel text
// ingest vs the two snapshot load paths.
//
// The harness synthesizes one Rand1-style hypergraph with >= 1M incidences
// (NWHY_BENCH_SCALE multiplies it), serializes it once into every on-disk
// format, then times the loads:
//
//   parse-mm      parallel MatrixMarket ingest (parse_matrix_market), swept
//                 over NWHY_BENCH_THREADS — the scaling series
//   read-bin      NWHYBIN1 legacy binary (serial stream read)
//   read-nwcsr    NWHYCSR2 streamed read (pipe-safe path, verifies all
//                 section checksums)
//   mmap-nwcsr    NWHYCSR2 zero-copy mmap load; the timed region includes a
//                 first-touch sweep over every mapped section so page-fault
//                 cost is charged to the load, not to the first algorithm
//   read-nwcsrz   streamed read of the compressed snapshot (SVB target
//                 sections), decoding to owned CSRs inside the timed region
//   mmap-nwcsrz   mmap load of the compressed snapshot + full materialize —
//                 the "cold start from a small file" number
//   decode-svb    pure block-decode throughput, swept over
//                 NWHY_BENCH_THREADS: the snapshot is mapped in stream mode
//                 outside the timer and both compressed_adjacency views are
//                 materialized inside it; `bytes` is the LOGICAL decoded
//                 output (2 x m x 4), so MB/s is decode bandwidth
//   svb-sections  zero-time bookkeeping record: `bytes` is the on-disk size
//                 of the compressed target sections (kinds 7-10), so
//                 8*incidences/bytes is the target-section compression ratio
//
// The footer prints the headline acceptance ratios: mmap load vs 1-thread
// text parse (the paper-motivated "don't re-parse what you already
// canonicalized" argument), the compressed-vs-raw bytes on disk, and the
// peak decode bandwidth in GB/s.
//
//   NWHY_BENCH_JSON  path; when set the harness skips the table and writes
//                    machine-readable records for scripts/bench_snapshot.sh:
//                    schema nwhy-bench-io-v1, one record per operation x
//                    thread-count: {"dataset", "operation", "threads",
//                    "median_ms", "incidences", "bytes"}
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "bench_common.hpp"

using namespace bench;

namespace {

struct corpus {
  std::string  name;
  biedgelist<> el;
  std::string  mtx_path, bin_path, nwcsr_path, nwcsrz_path;
  std::size_t  mtx_bytes = 0, bin_bytes = 0, nwcsr_bytes = 0, nwcsrz_bytes = 0;
  std::size_t  svb_section_bytes = 0;  // on-disk bytes of section kinds 7-10
};

/// Sum the on-disk bytes of the compressed target sections (kinds 7-10)
/// by parsing just the snapshot's header + section table.
std::size_t svb_section_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  in.seekg(0, std::ios::end);
  const std::uint64_t file_size = static_cast<std::uint64_t>(in.tellg());
  in.seekg(0);
  std::vector<unsigned char> head(static_cast<std::size_t>(std::min<std::uint64_t>(
      file_size, csr_detail::header_bytes +
                     csr_detail::max_section_count * csr_detail::table_entry_bytes)));
  in.read(reinterpret_cast<char*>(head.data()), static_cast<std::streamsize>(head.size()));
  auto        h   = csr_detail::parse_header(head.data(), file_size, path);
  std::size_t acc = 0;
  for (const auto& s : h.sections) {
    if (s.kind >= csr_sec_e2n_targets_svb && s.kind <= csr_sec_e2n_dict_indices) {
      acc += static_cast<std::size_t>(s.length);
    }
  }
  return acc;
}

/// Build the benchmark hypergraph (>= 1M incidences at scale 1) and
/// serialize it into all the on-disk formats under a scratch directory.
corpus make_corpus(const std::filesystem::path& dir) {
  std::size_t scale = env_size("NWHY_BENCH_SCALE", 1);
  corpus      c;
  c.name = "Rand-io";
  c.el   = gen::uniform_random_hypergraph(/*num_edges=*/120000 * scale,
                                          /*num_nodes=*/120000 * scale,
                                          /*edge_size=*/10, /*seed=*/0x10C0FFEE);
  c.el.sort_and_unique();

  c.mtx_path    = (dir / "bench_io.mtx").string();
  c.bin_path    = (dir / "bench_io.bin").string();
  c.nwcsr_path  = (dir / "bench_io.nwcsr").string();
  c.nwcsrz_path = (dir / "bench_io.z.nwcsr").string();

  write_matrix_market(c.mtx_path, c.el);
  write_binary(c.bin_path, c.el);
  biadjacency<0> edges(c.el);
  biadjacency<1> nodes(c.el);
  write_csr_snapshot(c.nwcsr_path, edges, nodes);
  write_csr_snapshot(c.nwcsrz_path, edges, nodes, csr_compress_options{});

  c.mtx_bytes    = std::filesystem::file_size(c.mtx_path);
  c.bin_bytes    = std::filesystem::file_size(c.bin_path);
  c.nwcsr_bytes  = std::filesystem::file_size(c.nwcsr_path);
  c.nwcsrz_bytes = std::filesystem::file_size(c.nwcsrz_path);
  c.svb_section_bytes = svb_section_bytes(c.nwcsrz_path);
  return c;
}

/// First-touch every mapped section so the mmap timing charges page faults
/// to the load.  Returns a checksum-ish value to defeat dead-code
/// elimination.
std::uint64_t touch_all(const csr_snapshot& snap) {
  std::uint64_t acc = 0;
  auto          sweep = [&](const auto& csr) {
    for (auto v : csr.indices()) acc += v;
    for (auto v : csr.targets()) acc += v;
  };
  sweep(snap.edges.csr());
  sweep(snap.nodes.csr());
  if (snap.adjoin) sweep(snap.adjoin->graph);
  return acc;
}

struct sample {
  std::string operation;
  unsigned    threads;
  double      median_ms;
  std::size_t incidences;
  std::size_t bytes;
};

/// Run the full measurement matrix once; both output modes render it.
std::vector<sample> measure(const corpus& c) {
  std::vector<sample> out;
  const unsigned      restore = nw::par::num_threads();

  // Parallel MatrixMarket ingest, swept over the thread counts.  The slurp
  // is inside the timed region: "load this text file" is the user-visible
  // operation being compared against the snapshot loads.
  for (unsigned t : env_threads()) {
    nw::par::thread_pool::set_default_concurrency(t);
    std::size_t m  = 0;
    double      ms = time_median_ms([&] {
      auto el = graph_reader(c.mtx_path);
      m       = el.size();
    });
    out.push_back({"parse-mm", t, ms, m, c.mtx_bytes});
  }
  nw::par::thread_pool::set_default_concurrency(restore);

  {  // NWHYBIN1 legacy binary (serial).
    std::size_t m  = 0;
    double      ms = time_median_ms([&] {
      auto el = read_binary(c.bin_path);
      m       = el.size();
    });
    out.push_back({"read-bin", 1, ms, m, c.bin_bytes});
  }
  {  // NWHYCSR2 streamed read (always verifies checksums).
    std::size_t m  = 0;
    double      ms = time_median_ms([&] {
      std::ifstream in(c.nwcsr_path, std::ios::binary);
      auto          snap = read_csr_snapshot(in, c.nwcsr_path);
      m                  = snap.m;
    });
    out.push_back({"read-nwcsr", 1, ms, m, c.nwcsr_bytes});
  }
  {  // NWHYCSR2 zero-copy mmap load + first-touch sweep.
    std::size_t            m   = 0;
    volatile std::uint64_t acc = 0;
    double                 ms  = time_median_ms([&] {
      auto snap = load_csr_snapshot(c.nwcsr_path);
      acc       = acc + touch_all(snap);
      m         = snap.m;
    });
    out.push_back({"mmap-nwcsr", 1, ms, m, c.nwcsr_bytes});
  }
  {  // Compressed snapshot, streamed read + decode to owned CSRs.
    std::size_t m  = 0;
    double      ms = time_median_ms([&] {
      std::ifstream in(c.nwcsrz_path, std::ios::binary);
      auto          snap = read_csr_snapshot(in, c.nwcsrz_path);
      m                  = snap.m;
    });
    out.push_back({"read-nwcsrz", 1, ms, m, c.nwcsrz_bytes});
  }
  {  // Compressed snapshot, mmap + full materialize (cold-start path).
    std::size_t            m   = 0;
    volatile std::uint64_t acc = 0;
    double                 ms  = time_median_ms([&] {
      auto snap = load_csr_snapshot(c.nwcsrz_path);
      acc       = acc + touch_all(snap);
      m         = snap.m;
    });
    out.push_back({"mmap-nwcsrz", 1, ms, m, c.nwcsrz_bytes});
  }
  {  // Pure SVB block-decode bandwidth, swept over the thread counts.  The
     // snapshot is mapped in stream mode outside the timer; the timed
     // region decodes every block of both compressed views.  `bytes` is
     // the logical decoded output, so MB/s below is decode bandwidth.
    auto snap = load_csr_snapshot(c.nwcsrz_path, /*verify_checksums=*/false,
                                  snapshot_decode::stream);
    const std::size_t logical = 2 * snap.m * sizeof(nw::vertex_id_t);
    for (unsigned t : env_threads()) {
      nw::par::thread_pool::set_default_concurrency(t);
      volatile std::size_t acc = 0;
      double               ms  = time_median_ms([&] {
        std::size_t n = 0;
        if (snap.edges_view) n += snap.edges_view->materialize().num_edges();
        if (snap.nodes_view) n += snap.nodes_view->materialize().num_edges();
        acc = acc + n;
      });
      out.push_back({"decode-svb", t, ms, snap.m, logical});
    }
    nw::par::thread_pool::set_default_concurrency(restore);
  }
  // Bookkeeping record: on-disk bytes of the compressed target sections,
  // so consumers can compute the target-section ratio (8*m / bytes).
  out.push_back({"svb-sections", 1, 0.0, c.el.size(), c.svb_section_bytes});
  return out;
}

double find_ms(const std::vector<sample>& rows, const std::string& op, unsigned threads) {
  for (const auto& r : rows) {
    if (r.operation == op && r.threads == threads) return r.median_ms;
  }
  return 0;
}

int run_json_mode(const char* path, const corpus& c, const std::vector<sample>& rows) {
  FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "[bench] cannot open %s for writing\n", path);
    return 1;
  }
  std::fprintf(out, "[");
  bool first = true;
  for (const auto& r : rows) {
    std::fprintf(out,
                 "%s\n  {\"dataset\": \"%s\", \"operation\": \"%s\", \"threads\": %u, "
                 "\"median_ms\": %.4f, \"incidences\": %zu, \"bytes\": %zu}",
                 first ? "" : ",", c.name.c_str(), r.operation.c_str(), r.threads, r.median_ms,
                 r.incidences, r.bytes);
    first = false;
  }
  std::fprintf(out, "\n]\n");
  std::fclose(out);
  std::fprintf(stderr, "[bench] wrote I/O sweep to %s\n", path);
  return 0;
}

}  // namespace

int main() {
  install_profile_export();

  std::error_code       ec;
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() / ("nwhy_bench_io." + std::to_string(::getpid()));
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "[bench] cannot create scratch dir %s\n", dir.string().c_str());
    return 1;
  }

  corpus c    = make_corpus(dir);
  auto   rows = measure(c);

  int rc = 0;
  if (const char* json = std::getenv("NWHY_BENCH_JSON"); json != nullptr && *json != '\0') {
    rc = run_json_mode(json, c, rows);
  } else {
    std::printf("I/O subsystem — load times (median of %zu reps)\n",
                env_size("NWHY_BENCH_REPS", 3));
    std::printf(
        "dataset %s: %zu incidences; %.1f MB text, %.1f MB bin, %.1f MB nwcsr, "
        "%.1f MB nwcsrz\n",
        c.name.c_str(), c.el.size(), c.mtx_bytes / 1e6, c.bin_bytes / 1e6, c.nwcsr_bytes / 1e6,
        c.nwcsrz_bytes / 1e6);
    std::printf("%-14s %8s %12s %14s\n", "operation", "threads", "median ms", "MB/s");
    for (const auto& r : rows) {
      if (r.operation == "svb-sections") continue;  // zero-time bookkeeping row
      double mbps = r.median_ms > 0 ? (r.bytes / 1e6) / (r.median_ms / 1e3) : 0;
      std::printf("%-14s %8u %12.2f %14.1f\n", r.operation.c_str(), r.threads, r.median_ms, mbps);
    }
    double parse1 = find_ms(rows, "parse-mm", env_threads().front());
    double mm     = find_ms(rows, "mmap-nwcsr", 1);
    if (parse1 > 0 && mm > 0) {
      std::printf("  -> mmap snapshot load is %.1fx faster than %u-thread text parse\n",
                  parse1 / mm, env_threads().front());
    }
    if (c.svb_section_bytes > 0) {
      std::printf("  -> compressed snapshot: %.1f MB vs %.1f MB raw on disk (%.2fx whole-file, "
                  "%.2fx on target sections)\n",
                  c.nwcsrz_bytes / 1e6, c.nwcsr_bytes / 1e6,
                  double(c.nwcsr_bytes) / double(c.nwcsrz_bytes),
                  double(2 * c.el.size() * sizeof(nw::vertex_id_t)) /
                      double(c.svb_section_bytes));
    }
    double decode_best = 0;
    for (const auto& r : rows) {
      if (r.operation == "decode-svb" && r.median_ms > 0) {
        decode_best = std::max(decode_best, (r.bytes / 1e9) / (r.median_ms / 1e3));
      }
    }
    if (decode_best > 0) {
      std::printf("  -> peak SVB decode bandwidth: %.2f GB/s of decoded targets\n", decode_best);
    }
  }

  std::filesystem::remove_all(dir, ec);
  return rc;
}
